package server

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/obs"
	"octostore/internal/storage"
)

// The rebalancer is the feedback loop that lifts the static-hash skew
// ceiling: it watches per-shard routed-op counters (windowed over its tick
// cadence), and when one shard's load runs hot relative to the mean it picks
// the hottest directory pinned to that shard and migrates the whole subtree
// to the coldest shard. The move itself is a sequence of per-file
// detach/attach pairs — each half running on its owning shard loop under the
// usual single-writer discipline, with destination capacity grown through
// the ledger's two-phase reserve/commit protocol — under a routeMigrating
// table entry, so clients double-read (destination first, hash owner as
// fallback) and never block on the move. Once every source shard sweeps
// empty the entry flips to routeCommitted and the fallback read disappears.
//
// The migrating state is self-stabilizing, never rolled back: files that a
// sweep could not move (mid-create, replica in transition, destination
// briefly out of capacity) stay readable through the fallback path and are
// retried on later sweeps or the Flush-time straggler drain. The route
// only ever moves forward — migrating → committed — which keeps the epoch
// protocol a one-way door and the failure model trivial. Committed entries
// are not permanent, though: once a subtree goes cold the entry drains —
// committed → draining → removed, the same forward-only double-read epoch
// run in reverse — so the bounded route table recycles its slots instead of
// saturating after MaxPrefixes lifetime migrations (see maintainRoutes).

// RebalanceConfig tunes hot-shard detection and migration.
type RebalanceConfig struct {
	// Enabled turns the rebalancer on (default off: static routing,
	// zero added cost on the serving path).
	Enabled bool
	// Interval is the detection cadence in virtual time (default 2s). Under
	// live load the background loop maps it to wall time through the inner
	// TimeScale; replay-driven callers invoke RebalanceTick directly.
	Interval time.Duration
	// HotRatio is the max/mean shard-load imbalance that triggers a
	// migration (default 1.5).
	HotRatio float64
	// MinOps is the minimum windowed op count on the hot shard before the
	// ratio is believed — low-traffic noise never triggers moves
	// (default 256).
	MinOps int64
	// MaxPrefixes bounds the route table (default 64).
	MaxPrefixes int
	// MaxSweeps bounds how many passes one migration round makes over the
	// source shards before leaving the remainder to a later round
	// (default 4).
	MaxSweeps int
	// RehomeColdTicks is how many consecutive detection rounds a committed
	// subtree must log zero routed ops before its files fold back to static
	// routing and the route entry is garbage-collected — without it the
	// table fills after MaxPrefixes lifetime migrations and the rebalancer
	// permanently stops reacting to new hotspots (default 8; negative
	// disables fold-back).
	RehomeColdTicks int
}

func (c *RebalanceConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.HotRatio <= 1 {
		c.HotRatio = 1.5
	}
	if c.MinOps <= 0 {
		c.MinOps = 256
	}
	if c.MaxPrefixes <= 0 {
		c.MaxPrefixes = 64
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 4
	}
	if c.RehomeColdTicks == 0 {
		c.RehomeColdTicks = 8
	}
}

// RebalanceStats is the rebalancer's counter snapshot.
type RebalanceStats struct {
	Started    int64   `json:"started"`
	Completed  int64   `json:"completed"`
	Aborted    int64   `json:"aborted"`
	EpochFlips int64   `json:"epoch_flips"`
	FilesMoved int64   `json:"files_moved"`
	BytesMoved int64   `json:"bytes_moved"`
	Superseded int64   `json:"superseded"` // stale source copies dropped after a client recreate on dst (no bytes copied)
	Rehomed    int64   `json:"rehomed"`    // cold committed routes folded back to static routing
	Spread     float64 `json:"spread"` // last observed max/mean shard-load ratio
	Routes     int     `json:"routes"` // current route-table entries
}

// trackerCap bounds the per-dir counter map; dirs beyond the cap still count
// toward their shard's total but are not individually rankable.
const trackerCap = 4096

// dirStat is one directory's windowed access count plus the shard its ops
// last routed to.
type dirStat struct {
	ops   atomic.Int64
	shard atomic.Int32
}

// loadTracker accumulates routed-op counts per shard and per directory.
// note() is on the client access path, so it is two atomic adds and a lock-
// free map probe; the map only grows (bounded by trackerCap) and is swept by
// the tick.
type loadTracker struct {
	perShard []atomic.Int64
	dirs     sync.Map // dir string -> *dirStat
	nDirs    atomic.Int64
}

func newLoadTracker(shards int) *loadTracker {
	return &loadTracker{perShard: make([]atomic.Int64, shards)}
}

func (t *loadTracker) note(dir string, shard int) {
	t.perShard[shard].Add(1)
	v, ok := t.dirs.Load(dir)
	if !ok {
		if t.nDirs.Load() >= trackerCap {
			return
		}
		var loaded bool
		v, loaded = t.dirs.LoadOrStore(dir, &dirStat{})
		if !loaded {
			t.nDirs.Add(1)
		}
	}
	ds := v.(*dirStat)
	ds.ops.Add(1)
	ds.shard.Store(int32(shard))
}

// rebalancer owns the detection loop, the route table, and the migration
// engine. One round runs at a time (mu); the tracker and stats are written
// lock-free from the serving path.
type rebalancer struct {
	s       *ShardedServer
	cfg     RebalanceConfig
	tracker *loadTracker

	mu sync.Mutex // serializes detection rounds and route-table writes

	started    atomic.Int64
	completed  atomic.Int64
	aborted    atomic.Int64
	flips      atomic.Int64
	filesMoved atomic.Int64
	bytesMoved atomic.Int64
	superseded atomic.Int64
	rehomed    atomic.Int64
	spreadBits atomic.Uint64

	// coldTicks counts, per committed route prefix, consecutive detection
	// rounds with zero routed ops under the subtree; drainClean counts, per
	// draining prefix, consecutive rounds whose fold-back walk found nothing
	// left to move (the removal grace). Both guarded by mu.
	coldTicks  map[string]int
	drainClean map[string]int

	stop chan struct{}
	wg   sync.WaitGroup
}

func newRebalancer(s *ShardedServer, cfg RebalanceConfig) *rebalancer {
	cfg.applyDefaults()
	return &rebalancer{
		s:          s,
		cfg:        cfg,
		tracker:    newLoadTracker(len(s.shards)),
		coldTicks:  make(map[string]int),
		drainClean: make(map[string]int),
		stop:       make(chan struct{}),
	}
}

// start launches the wall-time detection loop (live mode only; replay
// drivers call RebalanceTick themselves).
func (r *rebalancer) start(timeScale float64) {
	if timeScale <= 0 {
		return
	}
	wall := time.Duration(float64(r.cfg.Interval) / timeScale)
	if wall < time.Millisecond {
		wall = time.Millisecond
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(wall)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.tick()
			}
		}
	}()
}

// halt stops the detection loop and waits for any in-flight round. Must run
// BEFORE the shard loops close: a round mid-migration Execs on shard loops,
// and Exec on a closed server never returns.
func (r *rebalancer) halt() {
	close(r.stop)
	r.wg.Wait()
}

// exec runs fn with exclusive access to sh's file system: through the shard
// loop while the system is live, directly when the loops are stopped (same
// contract as ShardedServer.Exec — outside Start/Close the caller's
// goroutine is the only one near the shards).
func (r *rebalancer) exec(sh *shard, fn func(*dfs.FileSystem)) {
	if !r.s.running {
		fn(sh.fs)
		return
	}
	sh.srv.Exec(fn)
}

func (r *rebalancer) snapshot() RebalanceStats {
	return RebalanceStats{
		Started:    r.started.Load(),
		Completed:  r.completed.Load(),
		Aborted:    r.aborted.Load(),
		EpochFlips: r.flips.Load(),
		FilesMoved: r.filesMoved.Load(),
		BytesMoved: r.bytesMoved.Load(),
		Superseded: r.superseded.Load(),
		Rehomed:    r.rehomed.Load(),
		Spread:     math.Float64frombits(r.spreadBits.Load()),
		Routes:     len(r.s.routes.entries()),
	}
}

// maxMovesPerTick bounds how many subtree migrations one detection round
// plans; a skew spread over many colliding dirs drains over a few ticks.
const maxMovesPerTick = 4

// tick runs one detection round: swap out the windowed counters, compute the
// imbalance ratio, and if a shard runs hot greedily plan subtree moves off it
// — hottest eligible dir first, each to the planned-coldest shard, each move
// accepted only if it strictly narrows the hot/cold gap (so a single
// dominant dir is never pointlessly bounced between shards) — then execute
// the plan.
func (r *rebalancer) tick() {
	r.mu.Lock()
	defer r.mu.Unlock()

	n := len(r.s.shards)
	ops := make([]int64, n)
	var total, max int64
	hot := 0
	for i := range ops {
		ops[i] = r.tracker.perShard[i].Swap(0)
		total += ops[i]
		if ops[i] > max {
			max, hot = ops[i], i
		}
	}
	entries := r.s.routes.entries()
	// Per-dir windows reset on the same cadence so dir counts and shard
	// counts describe the same window. The same sweep sums the window's ops
	// under each committed route, feeding the cold-subtree fold-back in
	// maintainRoutes.
	type dirLoad struct {
		dir string
		ops int64
	}
	var dirs []dirLoad
	opsUnder := make(map[string]int64, len(entries))
	r.tracker.dirs.Range(func(k, v any) bool {
		ds := v.(*dirStat)
		c := ds.ops.Swap(0)
		if c == 0 {
			return true
		}
		dir := k.(string)
		for i := range entries {
			if entries[i].state == routeCommitted && covers(entries[i].prefix, dir) {
				opsUnder[entries[i].prefix] += c
				break // entries never nest, so at most one covers dir
			}
		}
		if int(ds.shard.Load()) == hot {
			dirs = append(dirs, dirLoad{dir: dir, ops: c})
		}
		return true
	})

	if total == 0 {
		return
	}
	mean := float64(total) / float64(n)
	spread := float64(max) / mean
	r.spreadBits.Store(math.Float64bits(spread))

	r.maintainRoutes(entries, opsUnder)

	if spread < r.cfg.HotRatio || max < r.cfg.MinOps {
		return
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].ops > dirs[j].ops })
	loads := append([]int64(nil), ops...)
	type plannedMove struct {
		prefix string
		dst    int
	}
	var plans []plannedMove
	for _, d := range dirs {
		if len(plans) >= maxMovesPerTick || len(entries)+len(plans) >= r.cfg.MaxPrefixes {
			break
		}
		if float64(loads[hot]) < r.cfg.HotRatio*mean {
			break // balanced enough; save the route-table budget
		}
		if d.dir == "/" || d.ops*64 < ops[hot] {
			continue // noise dirs are not worth a route entry
		}
		// Never nest route entries: an override covering (or covered by) an
		// existing or just-planned prefix would make ownership ambiguous
		// mid-migration.
		nested := false
		for _, e := range entries {
			if covers(e.prefix, d.dir) || covers(d.dir, e.prefix) {
				nested = true
				break
			}
		}
		for _, p := range plans {
			if covers(p.prefix, d.dir) || covers(d.dir, p.prefix) {
				nested = true
				break
			}
		}
		if nested {
			continue
		}
		// Coldest shard by planned load; reject moves that would merely swap
		// the imbalance rather than spread it.
		cold := 0
		for i := range loads {
			if loads[i] < loads[cold] {
				cold = i
			}
		}
		if cold == hot || loads[hot]-d.ops < loads[cold]+d.ops {
			continue
		}
		plans = append(plans, plannedMove{prefix: d.dir, dst: cold})
		loads[hot] -= d.ops
		loads[cold] += d.ops
	}
	for _, p := range plans {
		r.migratePrefix(p.prefix, p.dst, spread)
	}
}

// rehomesPerTick bounds how many cold committed entries one detection round
// starts folding back; continuing an already-draining entry is always free.
const rehomesPerTick = 1

// maintainRoutes garbage-collects the route table so it never fills up for
// good: draining entries continue their fold-back sweeps, and — under
// route-table budget pressure — committed entries whose subtree logged zero
// routed ops for RehomeColdTicks consecutive rounds start folding back to
// static routing, freeing MaxPrefixes slots (and lookup-scan entries) for
// future hotspots instead of permanently spending one per lifetime
// migration. The pressure gate matters: with plenty of slots free a
// committed override costs almost nothing, and folding subtrees back on
// every idle spell would thrash files between shards — every extra flip is
// another epoch transition for live traffic to race. Runs under r.mu as
// part of tick.
func (r *rebalancer) maintainRoutes(entries []routeEntry, opsUnder map[string]int64) {
	if r.cfg.RehomeColdTicks < 0 {
		return
	}
	for _, e := range entries {
		if e.state == routeDraining {
			r.drainEntryHome(e.prefix, e.dst, r.cfg.MaxSweeps)
		}
	}
	if len(entries) < r.cfg.MaxPrefixes/2 {
		return
	}
	started := 0
	for _, e := range entries {
		if e.state != routeCommitted {
			continue
		}
		if opsUnder[e.prefix] > 0 {
			delete(r.coldTicks, e.prefix)
			continue
		}
		r.coldTicks[e.prefix]++
		if started < rehomesPerTick && r.coldTicks[e.prefix] >= r.cfg.RehomeColdTicks {
			r.rehomePrefix(e.prefix, e.dst)
			started++
		}
	}
}

// rehomePrefix folds a cold committed subtree back to static routing: the
// entry flips to routeDraining — writes route by the per-dir hash again
// while reads keep a fallback to the old destination — and the
// destination's files under the prefix sweep back to their hash owners.
func (r *rebalancer) rehomePrefix(prefix string, dst int) {
	delete(r.coldTicks, prefix)
	r.s.routes.upsert(routeEntry{prefix: prefix, dst: dst, state: routeDraining})
	r.s.cfg.Inner.Obs.EmitEvent(&obs.Event{
		What:   "shard-migration",
		Detail: fmt.Sprintf("rehome prefix=%s dst=%d", prefix, dst),
	})
	r.drainEntryHome(prefix, dst, r.cfg.MaxSweeps)
}

// drainEntryHome makes up to `rounds` passes moving the old destination's
// files under a draining prefix back to the shard their parent dir hashes
// to — sweepEntry in reverse, reusing the same per-file copy-then-detach
// move (reads stay correct throughout: the per-dir hash owner is primary,
// dst is the fallback). Files whose dir hashes to dst stay put. Once dst
// stays clean for RehomeColdTicks consecutive rounds the entry is removed;
// a stalled pass leaves it draining for a later round. Returns true when
// the entry was removed.
func (r *rebalancer) drainEntryHome(prefix string, dst int, rounds int) bool {
	src := r.s.shards[dst]
	n := uint32(len(r.s.shards))
	for pass := 0; pass < rounds; pass++ {
		var paths []string
		r.exec(src, func(fs *dfs.FileSystem) {
			fs.Namespace().WalkUnder(prefix, func(f *dfs.File) {
				paths = append(paths, f.Path())
			})
		})
		var work, remaining, moved int64
		for _, p := range paths {
			dir, _ := parentOf(p)
			owner := int(fnv32(dir) % n)
			if owner == dst {
				continue
			}
			work++
			switch r.migrateFile(src, r.s.shards[owner], p) {
			case migrateMoved:
				moved++
			case migrateSkipped:
				remaining++
			case migrateGone:
			}
		}
		if work == 0 {
			// Clean walk: dst holds nothing the static hash would not place
			// there anyway. The entry is removed only after RehomeColdTicks
			// consecutive clean rounds (one per detection tick): a create
			// routed against a pre-draining snapshot can still land on dst,
			// and the grace lets a later round sweep it home instead of the
			// eager removal stranding it where static routing never looks.
			r.drainClean[prefix]++
			if r.drainClean[prefix] < max(r.cfg.RehomeColdTicks, 1) {
				return false
			}
			delete(r.drainClean, prefix)
			r.s.routes.remove(prefix)
			r.rehomed.Add(1)
			r.s.cfg.Inner.Obs.EmitEvent(&obs.Event{
				What:   "shard-migration",
				Detail: fmt.Sprintf("rehomed prefix=%s dst=%d", prefix, dst),
			})
			return true
		}
		r.drainClean[prefix] = 0
		if remaining == 0 {
			continue // everything seen this pass moved; re-walk for stragglers
		}
		if moved == 0 {
			return false // stalled; the draining entry keeps reads correct
		}
	}
	return false
}

// migratePrefix installs a migrating route for the subtree and sweeps every
// source shard's files under it over to dst, flipping the entry to committed
// once the sources are empty. Partial progress is fine: the entry stays
// migrating and later rounds (or the Flush drain) finish the job.
func (r *rebalancer) migratePrefix(prefix string, dst int, spread float64) {
	r.started.Add(1)
	r.s.routes.upsert(routeEntry{prefix: prefix, dst: dst, state: routeMigrating})
	r.s.cfg.Inner.Obs.EmitEvent(&obs.Event{
		What:   "shard-migration",
		Detail: fmt.Sprintf("start prefix=%s dst=%d spread=%.2f", prefix, dst, spread),
	})
	r.sweepEntry(prefix, dst, r.cfg.MaxSweeps)
}

// sweepEntry makes up to `rounds` passes moving files under prefix from
// every shard except dst onto dst. Returns true when the entry flipped to
// committed.
func (r *rebalancer) sweepEntry(prefix string, dst int, rounds int) bool {
	var movedTotal int64
	for pass := 0; pass < rounds; pass++ {
		var remaining, moved int64
		for i, sh := range r.s.shards {
			if i == dst {
				continue
			}
			// Collect under the shard loop, then migrate file by file so
			// client ops interleave between moves.
			var paths []string
			r.exec(sh, func(fs *dfs.FileSystem) {
				fs.Namespace().WalkUnder(prefix, func(f *dfs.File) {
					paths = append(paths, f.Path())
				})
			})
			for _, p := range paths {
				switch r.migrateFile(sh, r.s.shards[dst], p) {
				case migrateMoved:
					moved++
				case migrateSkipped:
					remaining++
				case migrateGone:
					// recreated on dst or deleted mid-sweep: nothing left here
				}
			}
		}
		movedTotal += moved
		if remaining == 0 {
			r.s.routes.upsert(routeEntry{prefix: prefix, dst: dst, state: routeCommitted})
			r.flips.Add(1)
			r.completed.Add(1)
			r.s.cfg.Inner.Obs.EmitEvent(&obs.Event{
				What:   "shard-migration",
				Detail: fmt.Sprintf("commit prefix=%s dst=%d files=%d", prefix, dst, movedTotal),
			})
			return true
		}
		if moved == 0 {
			// Zero progress with files still stranded: give up this round.
			// The migrating entry keeps reads correct via the fallback path;
			// a later round retries.
			r.aborted.Add(1)
			r.s.cfg.Inner.Obs.EmitEvent(&obs.Event{
				What:   "shard-migration",
				Detail: fmt.Sprintf("stall prefix=%s dst=%d remaining=%d", prefix, dst, remaining),
			})
			return false
		}
	}
	return false
}

type migrateOutcome int

const (
	migrateMoved migrateOutcome = iota
	migrateSkipped
	migrateGone
)

// migrateFile moves one file with copy-then-detach ordering so the file is
// visible to the double-read at every instant: snapshot the layout on the
// source, attach a copy (with a quota borrow through the ledger's two-phase
// protocol) on the destination, then detach the source copy as the commit.
// Between attach and commit the file briefly exists on both shards; reads
// hit the destination (primary) and deletes during the epoch delete on both
// sides, so neither copy can serve stale truth. A commit that finds the
// source copy already gone means a client deleted the file mid-move — the
// fresh destination copy is removed too, honoring the delete.
func (r *rebalancer) migrateFile(src, dst *shard, path string) migrateOutcome {
	var rec dfs.FileRecord
	var serr error
	r.exec(src, func(fs *dfs.FileSystem) { rec, serr = fs.SnapshotFile(path) })
	if serr != nil {
		if errors.Is(serr, dfs.ErrNotFound) {
			return migrateGone // deleted between walk and snapshot
		}
		return migrateSkipped // busy / mid-create: next sweep
	}
	aerr := r.attachOn(dst, rec)
	landed := aerr == nil
	switch {
	case landed:
		// Copy landed; commit below.
	case errors.Is(aerr, dfs.ErrExists):
		// A client recreated the path on the destination; the newer file
		// wins and the stale source copy just needs to go (commit below).
	default:
		// Capacity, even after borrowing: the source copy is untouched and
		// keeps serving through the fallback path. Retry on a later sweep.
		return migrateSkipped
	}
	var derr error
	r.exec(src, func(fs *dfs.FileSystem) { _, derr = fs.DetachFile(path) })
	if derr == nil {
		if landed {
			r.filesMoved.Add(1)
			r.bytesMoved.Add(rec.Bytes())
		} else {
			// ErrExists: no bytes were copied — the stale source copy was
			// merely dropped in favor of the client's recreate. Counting it
			// as a move would inflate the moved-files/bytes counters the
			// benchgate vacuity check reads.
			r.superseded.Add(1)
		}
		return migrateMoved
	}
	if errors.Is(derr, dfs.ErrNotFound) {
		// Deleted mid-move. If we attached a copy a moment ago, take it back
		// out (a racing client delete may already have).
		if landed {
			r.exec(dst, func(fs *dfs.FileSystem) { _, _ = fs.DetachFile(path) })
		}
		return migrateGone
	}
	// The source copy went busy between snapshot and commit (a movement
	// grabbed it). Both copies stay live — reads serve the destination —
	// and the next sweep retries the commit.
	return migrateSkipped
}

// attachOn recreates the record on sh's file system, borrowing quota from
// the global ledger when the shard's slice is short, and indexes the file
// into the shard's serving handles. The returned error is nil on success,
// dfs.ErrExists when the path is already there, dfs.ErrNoCapacity when the
// shard cannot take the file even after borrowing.
func (r *rebalancer) attachOn(sh *shard, rec dfs.FileRecord) error {
	var aerr error
	r.exec(sh, func(fs *dfs.FileSystem) {
		aerr = fs.AttachFile(rec)
		if aerr != nil && errors.Is(aerr, dfs.ErrNoCapacity) {
			chain, maxRep := rec.TierNeeds()
			granted := true
			for _, m := range storage.AllMedia {
				if maxRep[m] > 0 && !sh.quota.EnsureSpread(m, chain[m], maxRep[m]) {
					granted = false
				}
			}
			if granted {
				aerr = fs.AttachFile(rec)
			}
		}
		if aerr != nil {
			return
		}
		if f, gerr := fs.Namespace().GetFile(rec.Path); gerr == nil {
			sh.srv.indexFile(f)
		}
	})
	return aerr
}

// drain finishes every open epoch — bounded re-sweeps of each migrating
// entry until it flips, and of each draining entry until it is removed.
// Called from Flush so a fenced system has no half-moved subtrees (short of
// files that genuinely cannot move, which keep their fallback reads).
func (r *rebalancer) drain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.s.routes.entries() {
		switch e.state {
		case routeMigrating:
			r.sweepEntry(e.prefix, e.dst, r.cfg.MaxSweeps)
		case routeDraining:
			r.drainEntryHome(e.prefix, e.dst, r.cfg.MaxSweeps)
		}
	}
}
