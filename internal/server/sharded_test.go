package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/storage"
)

// buildSharded wires a managed sharded serving layer under live pacing with
// deliberately tight movement budgets and small initial quotas, so both the
// token bucket and the cross-shard borrow protocol carry real traffic.
func buildSharded(t *testing.T, shards, workers int) *server.ShardedServer {
	t.Helper()
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards: shards,
		Cluster: cluster.Config{
			Workers: workers, SlotsPerNode: 4, Spec: servedWorkerSpec(),
		},
		DFS: dfs.Config{Mode: dfs.ModeOctopus, Seed: 11, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			ctx := core.NewContext(fs, core.DefaultConfig())
			d, err := policy.NewDowngrade("lru", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			u, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, d, u), nil
		},
		Quota: server.QuotaConfig{
			InitialFraction:   0.5,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 20 * time.Second,
		},
		Inner: server.Config{
			TimeScale:    240,
			PaceInterval: time.Millisecond,
			Executor: server.ExecutorConfig{
				WorkersPerTier:  2,
				QueueDepth:      32,
				BudgetBytes:     [3]int64{256 * storage.MB, 1 * storage.GB, 2 * storage.GB},
				RateBytesPerSec: [3]float64{float64(64 * storage.MB), float64(128 * storage.MB), float64(256 * storage.MB)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestShardedConcurrentClientsWithChurn is the sharded race-suite
// acceptance test: 8 concurrent closed-loop clients create, access, stat,
// list, and delete files routed across 4 shard engines while a worker node
// fails on every shard, a fresh one joins, movement executors drain
// upgrades/downgrades under token budgets, and shard quotas borrow from and
// reconcile against the global ledger. At the end the full invariant suite
// — per-shard accounting, deep structural checks, index audits, ledger
// conservation, movement budgets — must be clean.
func TestShardedConcurrentClientsWithChurn(t *testing.T) {
	const (
		shards       = 4
		clients      = 8
		sharedFiles  = 48
		opsPerClient = 200
	)
	srv := buildSharded(t, shards, 5)
	srv.Start()

	shared := make([]string, sharedFiles)
	for i := 0; i < sharedFiles; i++ {
		// 12 parent directories so the population spans every shard.
		shared[i] = fmt.Sprintf("/hot/d%02d/f%03d", i%12, i)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, sharedFiles)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := c; i < sharedFiles; i += clients {
				size := (16 + rng.Int63n(112)) * storage.MB
				if err := srv.Create(shared[i], size); err != nil {
					errCh <- fmt.Errorf("preload %s: %w", shared[i], err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Mid-load churn: fail the highest-id worker on every shard, then join a
	// fresh one (ids stay aligned across shards through the fan-out API).
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		select {
		case <-time.After(150 * time.Millisecond):
		case <-stopChurn:
			return
		}
		victim := -1
		srv.Exec(func(shard int, fs *dfs.FileSystem) {
			if shard != 0 {
				return
			}
			for _, n := range fs.Cluster().Nodes() {
				if n.ID() > victim {
					victim = n.ID()
				}
			}
		})
		srv.FailNode(victim)
		select {
		case <-time.After(150 * time.Millisecond):
		case <-stopChurn:
			return
		}
		srv.AddNode(servedWorkerSpec(), 4)
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + c)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(sharedFiles-1))
			var own []string
			for i := 0; i < opsPerClient; i++ {
				switch r := rng.Float64(); {
				case r < 0.70:
					if _, err := srv.Access(shared[zipf.Uint64()]); err != nil {
						t.Errorf("client %d access: %v", c, err)
						return
					}
				case r < 0.80:
					if _, err := srv.Stat(shared[rng.Intn(sharedFiles)]); err != nil {
						t.Errorf("client %d stat: %v", c, err)
						return
					}
				case r < 0.84:
					srv.List("/hot/d03")
				case r < 0.95 || len(own) == 0:
					path := fmt.Sprintf("/scratch/c%d/f%04d", c, i)
					if err := srv.Create(path, (4+rng.Int63n(28))*storage.MB); err != nil {
						t.Errorf("client %d create: %v", c, err)
						return
					}
					own = append(own, path)
				default:
					path := own[len(own)-1]
					own = own[:len(own)-1]
					if err := srv.Delete(path); err != nil && !errors.Is(err, dfs.ErrBusy) {
						t.Errorf("client %d delete: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()

	srv.Flush()
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants violated after sharded concurrent load: %v", violations)
	}
	stats := srv.Stats()
	if stats.Accesses == 0 || stats.Creates == 0 {
		t.Fatalf("load did not exercise the server: %+v", stats)
	}
	if srv.ExecutorStats().Queued() == 0 {
		t.Fatal("movement executors saw no requests; load did not stress tier movement")
	}
	srv.Close()
	// After Close the loops are stopped; the invariants must still hold.
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants violated after close: %v", violations)
	}
}

// TestShardedMetadataRouting covers the routed metadata surface: canonical
// and non-canonical spellings must resolve to the same shard, listings stay
// single-shard, and the population actually spans multiple shard engines.
func TestShardedMetadataRouting(t *testing.T) {
	srv := buildSharded(t, 3, 4)
	srv.Start()
	defer srv.Close()

	dirs := []string{"/a/b", "/c", "/d/e/f", "/g", "/h/i", "/j/k"}
	total := 0
	for di, dir := range dirs {
		for f := 0; f < 3; f++ {
			path := fmt.Sprintf("%s/file%d%d", dir, di, f)
			if err := srv.Create(path, 8*storage.MB); err != nil {
				t.Fatalf("create %s: %v", path, err)
			}
			total++
		}
	}
	if err := srv.Create("/a/b/file00", 8*storage.MB); !errors.Is(err, dfs.ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}
	// Non-canonical spellings route through the cleaner to the right shard.
	if !srv.Exists("/a//b/./file00") {
		t.Fatal("Exists rejected a non-canonical spelling")
	}
	if _, err := srv.Stat("/d/e//f/file20"); err != nil {
		t.Fatalf("Stat rejected a non-canonical spelling: %v", err)
	}
	if got := srv.List("/a//b"); len(got) != 3 {
		t.Fatalf("List of non-canonical dir: %v", got)
	}
	if res, err := srv.Access("/c/file10"); err != nil || !res.Served {
		t.Fatalf("Access: %+v, %v", res, err)
	}
	if _, err := srv.Access("/c/missing"); err == nil {
		t.Fatal("Access of missing path succeeded")
	}
	if err := srv.Delete("/g/file30"); err != nil {
		t.Fatal(err)
	}
	if srv.Exists("/g/file30") {
		t.Fatal("deleted file still resolvable")
	}
	// The namespace must actually be partitioned: count files per shard.
	perShard := make([]int, srv.NumShards())
	sum := 0
	srv.Exec(func(shard int, fs *dfs.FileSystem) {
		perShard[shard] = len(fs.LiveFiles())
		sum += len(fs.LiveFiles())
	})
	if sum != total-1 {
		t.Fatalf("per-shard files sum to %d, want %d (%v)", sum, total-1, perShard)
	}
	populated := 0
	for _, n := range perShard {
		if n > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("population landed on %d shard(s); namespace is not partitioned (%v)", populated, perShard)
	}
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants: %v", violations)
	}
}

// TestShardedFailNodeSettlesPooledCapacity asserts node loss takes the
// dead node's unclaimed pooled share out of circulation: the ledger total
// drops by the node's full physical capacity (quota slices plus pooled
// remainder), not just by the granted slices, so the pool cannot lend out
// capacity that no longer exists; a later join restores both sides.
func TestShardedFailNodeSettlesPooledCapacity(t *testing.T) {
	const shards, workers = 4, 4
	srv := buildSharded(t, shards, workers)
	srv.Start()
	defer srv.Close()

	ledger := srv.Ledger()
	spec := servedWorkerSpec()
	var nodeCap [3]int64
	for _, ds := range spec {
		nodeCap[ds.Media] += ds.Capacity * int64(ds.Count)
	}
	totalBefore := [3]int64{
		ledger.TotalBytes(storage.Memory), ledger.TotalBytes(storage.SSD), ledger.TotalBytes(storage.HDD),
	}
	srv.FailNode(workers - 1) // empty node: no borrows happened, full debit
	for _, m := range storage.AllMedia {
		if got, want := ledger.TotalBytes(m), totalBefore[m]-nodeCap[m]; got != want {
			t.Fatalf("%s ledger total after FailNode: %d, want %d (node physical capacity settled)", m, got, want)
		}
	}
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants after FailNode: %v", violations)
	}
	srv.AddNode(spec, 4)
	for _, m := range storage.AllMedia {
		if got := ledger.TotalBytes(m); got != totalBefore[m] {
			t.Fatalf("%s ledger total after AddNode: %d, want %d", m, got, totalBefore[m])
		}
	}
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants after AddNode: %v", violations)
	}
}

// TestShardedReserveWithoutCommitNeverLeaks is the server-level
// crash-consistency test for the cross-shard move protocol: a reservation
// taken from the live server's ledger and never committed (its would-be
// owner "crashed" between the phases) must keep the conservation equation
// intact — Verify stays clean with the reservation outstanding — and an
// abort must restore the pool exactly.
func TestShardedReserveWithoutCommitNeverLeaks(t *testing.T) {
	srv := buildSharded(t, 4, 4)
	srv.Start()
	defer srv.Close()

	for i := 0; i < 12; i++ {
		if err := srv.Create(fmt.Sprintf("/crash/d%d/f%02d", i%4, i), 16*storage.MB); err != nil {
			t.Fatal(err)
		}
	}
	srv.Flush()

	ledger := srv.Ledger()
	freeBefore := ledger.FreeBytes(storage.SSD)
	if freeBefore <= 0 {
		t.Fatalf("pool empty before reservation: %d", freeBefore)
	}
	res, ok := ledger.Reserve(storage.SSD, freeBefore/2)
	if !ok {
		t.Fatal("reserve failed")
	}
	// Phase two never happens. The capacity must not leak: it is visible in
	// the reserved account and the full invariant suite still balances.
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("conservation broken with unresolved reservation: %v", violations)
	}
	if got := ledger.ReservedBytes(storage.SSD); got != freeBefore/2 {
		t.Fatalf("reserved account %d, want %d", got, freeBefore/2)
	}
	res.Abort()
	if got := ledger.FreeBytes(storage.SSD); got != freeBefore {
		t.Fatalf("pool after abort %d, want %d", got, freeBefore)
	}
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("conservation broken after abort: %v", violations)
	}
}
