package server

import (
	"errors"
	"math"
	"sync/atomic"
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/obs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// ErrMovementShed reports that the movement executor refused a request
// because the destination tier's queue was full (or a single request was
// larger than the tier's whole burst allowance). Shedding is the correct
// overload response for tier movement: the request is advisory — the policy
// will re-select the file on a later trigger once the backlog drains.
var ErrMovementShed = errors.New("server: movement executor shed request (tier queue full)")

// ExecutorConfig tunes the async movement executor.
type ExecutorConfig struct {
	// WorkersPerTier bounds how many moves execute concurrently into each
	// destination tier (default 2).
	WorkersPerTier int
	// QueueDepth bounds each destination tier's waiting queue; requests
	// beyond it are shed (default 128).
	QueueDepth int
	// BudgetBytes is each destination tier's token-bucket capacity — the
	// largest burst of admissions the tier allows, and the hard ceiling on a
	// single request's size (defaults: 1 GB memory, 2 GB SSD, 4 GB HDD).
	// The bucket starts full.
	BudgetBytes [3]int64
	// RateBytesPerSec refills each tier's bucket against the virtual clock:
	// over any virtual window of w seconds the executor admits at most
	// BudgetBytes + RateBytesPerSec*w bytes into the tier — a true
	// bytes/second movement budget with bounded bursts, rather than the
	// bandwidth-delay-product in-flight cap it replaces (defaults:
	// 256 MB/s memory, 512 MB/s SSD, 1 GB/s HDD). Use math.Inf(1) to
	// unmeter a tier (the bucket then never empties).
	RateBytesPerSec [3]float64
	// MoveLatency delays each admitted transfer's start, modelling the
	// command path through worker heartbeats. server.New defaults it to
	// the manager's core.Config.MoveLatency so serving-path movement
	// timing matches the sequential path; a bare executor falls back to
	// the paper's 5 s.
	MoveLatency time.Duration
	// PreMove, when set, runs right before each admitted move starts, on
	// the loop that owns the executor. The sharded serving layer uses it to
	// grow the shard's tier quota from the global ledger so the move's
	// destination reservation can succeed.
	PreMove func(tier storage.Media, bytes int64)
}

func (c *ExecutorConfig) applyDefaults() {
	if c.WorkersPerTier <= 0 {
		c.WorkersPerTier = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	burst := [3]int64{1 * storage.GB, 2 * storage.GB, 4 * storage.GB}
	for i := range c.BudgetBytes {
		if c.BudgetBytes[i] <= 0 {
			c.BudgetBytes[i] = burst[i]
		}
	}
	rate := [3]float64{float64(256 * storage.MB), float64(512 * storage.MB), float64(1 * storage.GB)}
	for i := range c.RateBytesPerSec {
		if c.RateBytesPerSec[i] <= 0 {
			c.RateBytesPerSec[i] = rate[i]
		}
	}
	if c.MoveLatency <= 0 {
		c.MoveLatency = 5 * time.Second
	}
}

// TierMoveStats is the per-destination-tier executor activity record.
type TierMoveStats struct {
	Scheduled        int64   // admitted into the tier pool
	Completed        int64   // committed moves
	Failed           int64   // moves that errored (placement, capacity, churn)
	Shed             int64   // rejected at admission (queue full / oversized)
	AdmittedBytes    int64   // bytes admitted through the token bucket
	MaxInFlightBytes int64   // high-water mark of concurrently moving bytes
	BudgetBytes      int64   // the configured bucket capacity, for reporting
	RateBytesPerSec  float64 // the configured refill rate, for reporting
}

// ExecutorStats snapshots the executor's counters.
type ExecutorStats struct {
	PerTier [3]TierMoveStats
	// VirtualSeconds is how much virtual time the executor has observed
	// since construction (sampled at token refills). Together with the
	// per-tier bucket parameters it bounds admissions:
	// AdmittedBytes <= BudgetBytes + RateBytesPerSec*VirtualSeconds.
	VirtualSeconds float64
	// Defers counts how many times admission was pushed out by Defer (the
	// SLO controller's shed-background-work lever).
	Defers int64
}

// Queued sums admitted requests across tiers.
func (s ExecutorStats) Queued() int64 {
	var n int64
	for _, t := range s.PerTier {
		n += t.Scheduled
	}
	return n
}

// CheckBudgets verifies the token-bucket admission invariant for every tier
// against the observed virtual time, returning a violation description or
// "" when all tiers are within budget.
func (s ExecutorStats) CheckBudgets() string {
	for i, t := range s.PerTier {
		if math.IsInf(t.RateBytesPerSec, 1) {
			continue
		}
		bound := float64(t.BudgetBytes) + t.RateBytesPerSec*s.VirtualSeconds
		if float64(t.AdmittedBytes) > bound {
			return storage.Media(i).String() + " executor exceeded its movement budget"
		}
	}
	return ""
}

// MovementExecutor is the serving layer's async replica-movement engine: a
// per-destination-tier pool of movement slots with a bounded FIFO queue and
// a token-bucket bandwidth budget per tier, refilled against the virtual
// clock. It implements core.Mover, so a core.Manager routes its
// upgrade/downgrade requests here instead of the inline Replication Monitor;
// transfers then overlap with serving — they execute as engine events while
// the core loop keeps absorbing client commands and access batches.
//
// All mutable pool state is owned by the core loop (Enqueue must only be
// called from it — the Manager's callbacks already run there); the counters
// are atomics so load drivers and tests read them from other goroutines.
type MovementExecutor struct {
	fs        *dfs.FileSystem
	engine    *sim.Engine
	cfg       ExecutorConfig
	virtStart time.Time // virtual construction time, origin of VirtualSeconds

	tiers [3]tierPool
	// deferUntil, while in the future, holds every tier's admissions back —
	// the SLO admission controller's lever for shedding background movement
	// when a tenant drifts past its latency target. Core-loop-owned; queued
	// requests stay queued (not shed) and a wake event at the deadline
	// guarantees the queue drains without further prodding.
	deferUntil time.Time
	defers     atomic.Int64
	// busy counts admitted-but-unfinished requests across all tiers; the
	// quiesce loop uses it to decide whether movement work is outstanding.
	busy atomic.Int64
	// virtualNS is the last virtual-time sample (nanoseconds since virtStart),
	// updated on the owning loop at refills and read by Stats from any
	// goroutine.
	virtualNS atomic.Int64

	// hub, when non-nil, receives a movement-provenance record per request
	// at admission (queued/shed) and at completion (completed/failed);
	// obsShard labels the records on a sharded hub.
	hub      *obs.Hub
	obsShard int
}

type tierPool struct {
	queue         []pendingMove // core-loop-owned FIFO
	active        int           // moves currently executing
	inFlightBytes int64
	tokens        float64   // current bucket level in bytes
	lastRefill    time.Time // virtual time of the last refill
	wake          *sim.Event

	scheduled   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	shed        atomic.Int64
	admitted    atomic.Int64
	maxInFlight atomic.Int64
	// depth mirrors len(queue) atomically so observability scrapes read the
	// backlog from other goroutines without touching core-loop-owned state.
	depth atomic.Int64
}

type pendingMove struct {
	req  core.MoveRequest
	size int64
}

// NewMovementExecutor builds an executor over the file system. Buckets
// start full.
func NewMovementExecutor(fs *dfs.FileSystem, cfg ExecutorConfig) *MovementExecutor {
	cfg.applyDefaults()
	e := &MovementExecutor{fs: fs, engine: fs.Engine(), cfg: cfg, virtStart: fs.Engine().Now()}
	for i := range e.tiers {
		e.tiers[i].tokens = float64(cfg.BudgetBytes[i])
		e.tiers[i].lastRefill = e.virtStart
	}
	return e
}

// Config returns the resolved configuration.
func (e *MovementExecutor) Config() ExecutorConfig { return e.cfg }

// setObs attaches the observability hub (nil = disabled). Called by
// server.New before any request flows.
func (e *MovementExecutor) setObs(hub *obs.Hub, shard int) {
	e.hub = hub
	e.obsShard = shard
}

// emitMove publishes one movement-provenance record. The file's path is
// read here, so callers must be on the loop that owns the executor (they
// already are — admission and completion both run there).
func (e *MovementExecutor) emitMove(r core.MoveRequest, size int64, outcome string, err error) {
	if e.hub == nil {
		return
	}
	rec := &obs.MoveRecord{
		Shard:       e.obsShard,
		VirtNS:      e.engine.Now().Sub(e.virtStart).Nanoseconds(),
		Path:        r.File.Path(),
		From:        r.From.String(),
		To:          r.To.String(),
		Bytes:       size,
		Policy:      r.Policy,
		Trigger:     r.Trigger,
		AccessCount: r.AccessCount,
		Outcome:     outcome,
	}
	if !r.LastAccess.IsZero() {
		rec.LastAccessNS = r.LastAccess.Sub(e.virtStart).Nanoseconds()
	}
	if err != nil {
		rec.Err = err.Error()
	}
	e.hub.EmitMove(rec)
}

// Enqueue implements core.Mover. Core loop only.
func (e *MovementExecutor) Enqueue(r core.MoveRequest) {
	if r.Done == nil {
		r.Done = func(error) {}
	}
	if !r.To.Valid() {
		r.Done(ErrMovementShed)
		return
	}
	pool := &e.tiers[r.To]
	size := moveBytes(r.File)
	if size > e.cfg.BudgetBytes[r.To] || len(pool.queue) >= e.cfg.QueueDepth {
		pool.shed.Add(1)
		e.emitMove(r, size, "shed", ErrMovementShed)
		r.Done(ErrMovementShed)
		return
	}
	pool.queue = append(pool.queue, pendingMove{req: r, size: size})
	pool.depth.Store(int64(len(pool.queue)))
	pool.scheduled.Add(1)
	e.busy.Add(1)
	e.emitMove(r, size, "queued", nil)
	e.pump(r.To)
}

// refill settles the tier's token bucket to the current virtual time and
// publishes the virtual-clock sample for Stats readers.
func (e *MovementExecutor) refill(tier storage.Media) {
	pool := &e.tiers[tier]
	now := e.engine.Now()
	elapsed := now.Sub(e.virtStart)
	if ns := elapsed.Nanoseconds(); ns > e.virtualNS.Load() {
		e.virtualNS.Store(ns)
	}
	dt := now.Sub(pool.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	pool.lastRefill = now
	burst := float64(e.cfg.BudgetBytes[tier])
	pool.tokens += e.cfg.RateBytesPerSec[tier] * dt
	if pool.tokens > burst || math.IsInf(pool.tokens, 1) {
		pool.tokens = burst
	}
}

// pump starts queued moves while the tier has a free slot and the token
// bucket covers the head request. The queue stays FIFO: a large move at the
// head waits for tokens rather than being bypassed, so sustained small moves
// cannot starve it. When tokens are the binding constraint, a wake event is
// scheduled at the virtual time the bucket refills enough for the head.
func (e *MovementExecutor) pump(tier storage.Media) {
	pool := &e.tiers[tier]
	e.refill(tier)
	if now := e.engine.Now(); e.deferUntil.After(now) {
		// SLO deferral: hold admissions but keep the queue; the wake at the
		// deadline re-pumps, so quiesce can still drain by stepping the
		// engine (movement work stays runnable, just postponed).
		if len(pool.queue) > 0 {
			e.wakeAt(tier, e.deferUntil.Sub(now))
		}
		return
	}
	for pool.active < e.cfg.WorkersPerTier && len(pool.queue) > 0 {
		head := pool.queue[0]
		if need := float64(head.size); pool.tokens < need {
			e.wakeWhenRefilled(tier, need)
			return
		}
		pool.tokens -= float64(head.size)
		pool.admitted.Add(head.size)
		pool.queue = pool.queue[1:]
		pool.depth.Store(int64(len(pool.queue)))
		e.start(tier, head)
	}
}

// Defer pushes the admission deadline out to `until` (never pulls it in):
// queued and future requests start only once the virtual clock passes it.
// Core loop only — the SLO controller's tick runs there.
func (e *MovementExecutor) Defer(until time.Time) {
	if !until.After(e.deferUntil) {
		return
	}
	e.deferUntil = until
	e.defers.Add(1)
	for _, m := range storage.AllMedia {
		if len(e.tiers[m].queue) > 0 {
			e.wakeAt(m, until.Sub(e.engine.Now()))
		}
	}
}

// DeferredUntil returns the current admission deadline (zero when movement
// was never deferred). Core loop only.
func (e *MovementExecutor) DeferredUntil() time.Time { return e.deferUntil }

// wakeWhenRefilled schedules one engine event at the virtual time the tier's
// bucket reaches `need` bytes, so a blocked queue makes progress even when
// no completion re-pumps it.
func (e *MovementExecutor) wakeWhenRefilled(tier storage.Media, need float64) {
	rate := e.cfg.RateBytesPerSec[tier]
	// Round up a whole nanosecond so the refill at the wake time covers the
	// deficit despite float truncation.
	need -= e.tiers[tier].tokens
	e.wakeAt(tier, time.Duration(math.Ceil(need/rate*float64(time.Second)))+time.Nanosecond)
}

// wakeAt schedules one engine event after `delay` that re-pumps the tier; a
// pending wake is left in place (the earlier of the two re-pumps, and pump
// re-schedules as needed).
func (e *MovementExecutor) wakeAt(tier storage.Media, delay time.Duration) {
	pool := &e.tiers[tier]
	if pool.wake != nil {
		return
	}
	if delay < time.Nanosecond {
		delay = time.Nanosecond
	}
	pool.wake = e.engine.Schedule(delay, func() {
		pool.wake = nil
		e.pump(tier)
	})
}

func (e *MovementExecutor) start(tier storage.Media, pm pendingMove) {
	pool := &e.tiers[tier]
	pool.active++
	pool.inFlightBytes += pm.size
	if pool.inFlightBytes > pool.maxInFlight.Load() {
		pool.maxInFlight.Store(pool.inFlightBytes)
	}
	if e.cfg.PreMove != nil {
		e.cfg.PreMove(tier, pm.size)
	}
	finish := func(err error) {
		pool.active--
		pool.inFlightBytes -= pm.size
		if err != nil {
			pool.failed.Add(1)
			e.emitMove(pm.req, pm.size, "failed", err)
		} else {
			pool.completed.Add(1)
			e.emitMove(pm.req, pm.size, "completed", nil)
		}
		pm.req.Done(err)
		e.busy.Add(-1)
		e.pump(tier)
	}
	e.engine.Schedule(e.cfg.MoveLatency, func() {
		err := e.fs.MoveFileReplicas(pm.req.File, pm.req.From, pm.req.To, finish)
		if err != nil {
			finish(err)
		}
	})
}

// moveBytes is the destination-tier footprint of moving a file: one replica
// per block (MoveFileReplicas relocates exactly the `from`-tier replica of
// each block).
func moveBytes(f *dfs.File) int64 {
	var total int64
	for _, b := range f.Blocks() {
		total += b.Size()
	}
	return total
}

// Idle reports whether no request is queued or in flight.
func (e *MovementExecutor) Idle() bool { return e.busy.Load() == 0 }

// Stats snapshots the executor counters. Safe from any goroutine.
func (e *MovementExecutor) Stats() ExecutorStats {
	var out ExecutorStats
	out.VirtualSeconds = time.Duration(e.virtualNS.Load()).Seconds()
	out.Defers = e.defers.Load()
	for i := range e.tiers {
		p := &e.tiers[i]
		out.PerTier[i] = TierMoveStats{
			Scheduled:        p.scheduled.Load(),
			Completed:        p.completed.Load(),
			Failed:           p.failed.Load(),
			Shed:             p.shed.Load(),
			AdmittedBytes:    p.admitted.Load(),
			MaxInFlightBytes: p.maxInFlight.Load(),
			BudgetBytes:      e.cfg.BudgetBytes[i],
			RateBytesPerSec:  e.cfg.RateBytesPerSec[i],
		}
	}
	return out
}
