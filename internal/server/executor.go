package server

import (
	"errors"
	"sync/atomic"
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// ErrMovementShed reports that the movement executor refused a request
// because the destination tier's queue was full (or a single request was
// larger than the tier's whole budget). Shedding is the correct overload
// response for tier movement: the request is advisory — the policy will
// re-select the file on a later trigger once the backlog drains.
var ErrMovementShed = errors.New("server: movement executor shed request (tier queue full)")

// ExecutorConfig tunes the async movement executor.
type ExecutorConfig struct {
	// WorkersPerTier bounds how many moves execute concurrently into each
	// destination tier (default 2).
	WorkersPerTier int
	// QueueDepth bounds each destination tier's waiting queue; requests
	// beyond it are shed (default 128).
	QueueDepth int
	// BudgetBytes caps the bytes in flight into each destination tier — the
	// executor's bandwidth budget expressed as a bandwidth-delay product.
	// The executor never admits a move that would push a tier's in-flight
	// bytes over its budget (defaults: 1 GB memory, 2 GB SSD, 4 GB HDD).
	BudgetBytes [3]int64
	// MoveLatency delays each admitted transfer's start, modelling the
	// command path through worker heartbeats. server.New defaults it to
	// the manager's core.Config.MoveLatency so serving-path movement
	// timing matches the sequential path; a bare executor falls back to
	// the paper's 5 s.
	MoveLatency time.Duration
}

func (c *ExecutorConfig) applyDefaults() {
	if c.WorkersPerTier <= 0 {
		c.WorkersPerTier = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	defaults := [3]int64{1 * storage.GB, 2 * storage.GB, 4 * storage.GB}
	for i := range c.BudgetBytes {
		if c.BudgetBytes[i] <= 0 {
			c.BudgetBytes[i] = defaults[i]
		}
	}
	if c.MoveLatency <= 0 {
		c.MoveLatency = 5 * time.Second
	}
}

// TierMoveStats is the per-destination-tier executor activity record.
type TierMoveStats struct {
	Scheduled        int64 // admitted into the tier pool
	Completed        int64 // committed moves
	Failed           int64 // moves that errored (placement, capacity, churn)
	Shed             int64 // rejected at admission (queue full / oversized)
	MaxInFlightBytes int64 // high-water mark of concurrently moving bytes
	BudgetBytes      int64 // the configured budget, for reporting
}

// ExecutorStats snapshots the executor's counters.
type ExecutorStats struct {
	PerTier [3]TierMoveStats
}

// Queued sums admitted requests across tiers.
func (s ExecutorStats) Queued() int64 {
	var n int64
	for _, t := range s.PerTier {
		n += t.Scheduled
	}
	return n
}

// MovementExecutor is the serving layer's async replica-movement engine: a
// per-destination-tier pool of movement slots with a bounded FIFO queue and
// an in-flight byte budget per tier. It implements core.Mover, so a
// core.Manager routes its upgrade/downgrade requests here instead of the
// inline Replication Monitor; transfers then overlap with serving — they
// execute as engine events while the core loop keeps absorbing client
// commands and access batches.
//
// All mutable pool state is owned by the core loop (Enqueue must only be
// called from it — the Manager's callbacks already run there); the counters
// are atomics so load drivers and tests read them from other goroutines.
type MovementExecutor struct {
	fs     *dfs.FileSystem
	engine *sim.Engine
	cfg    ExecutorConfig

	tiers [3]tierPool
	// busy counts admitted-but-unfinished requests across all tiers; the
	// quiesce loop uses it to decide whether movement work is outstanding.
	busy atomic.Int64
}

type tierPool struct {
	queue         []pendingMove // core-loop-owned FIFO
	active        int           // moves currently executing
	inFlightBytes int64

	scheduled   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	shed        atomic.Int64
	maxInFlight atomic.Int64
}

type pendingMove struct {
	req  core.MoveRequest
	size int64
}

// NewMovementExecutor builds an executor over the file system.
func NewMovementExecutor(fs *dfs.FileSystem, cfg ExecutorConfig) *MovementExecutor {
	cfg.applyDefaults()
	return &MovementExecutor{fs: fs, engine: fs.Engine(), cfg: cfg}
}

// Config returns the resolved configuration.
func (e *MovementExecutor) Config() ExecutorConfig { return e.cfg }

// Enqueue implements core.Mover. Core loop only.
func (e *MovementExecutor) Enqueue(r core.MoveRequest) {
	if r.Done == nil {
		r.Done = func(error) {}
	}
	if !r.To.Valid() {
		r.Done(ErrMovementShed)
		return
	}
	pool := &e.tiers[r.To]
	size := moveBytes(r.File)
	if size > e.cfg.BudgetBytes[r.To] || len(pool.queue) >= e.cfg.QueueDepth {
		pool.shed.Add(1)
		r.Done(ErrMovementShed)
		return
	}
	pool.queue = append(pool.queue, pendingMove{req: r, size: size})
	pool.scheduled.Add(1)
	e.busy.Add(1)
	e.pump(r.To)
}

// pump starts queued moves while the tier has both a free slot and budget
// headroom. The queue stays FIFO: a large move at the head waits for budget
// rather than being bypassed, so sustained small moves cannot starve it.
func (e *MovementExecutor) pump(tier storage.Media) {
	pool := &e.tiers[tier]
	for pool.active < e.cfg.WorkersPerTier && len(pool.queue) > 0 {
		head := pool.queue[0]
		if pool.inFlightBytes+head.size > e.cfg.BudgetBytes[tier] {
			return // budget exhausted; completions re-pump
		}
		pool.queue = pool.queue[1:]
		e.start(tier, head)
	}
}

func (e *MovementExecutor) start(tier storage.Media, pm pendingMove) {
	pool := &e.tiers[tier]
	pool.active++
	pool.inFlightBytes += pm.size
	if pool.inFlightBytes > pool.maxInFlight.Load() {
		pool.maxInFlight.Store(pool.inFlightBytes)
	}
	finish := func(err error) {
		pool.active--
		pool.inFlightBytes -= pm.size
		if err != nil {
			pool.failed.Add(1)
		} else {
			pool.completed.Add(1)
		}
		pm.req.Done(err)
		e.busy.Add(-1)
		e.pump(tier)
	}
	e.engine.Schedule(e.cfg.MoveLatency, func() {
		err := e.fs.MoveFileReplicas(pm.req.File, pm.req.From, pm.req.To, finish)
		if err != nil {
			finish(err)
		}
	})
}

// moveBytes is the destination-tier footprint of moving a file: one replica
// per block (MoveFileReplicas relocates exactly the `from`-tier replica of
// each block).
func moveBytes(f *dfs.File) int64 {
	var total int64
	for _, b := range f.Blocks() {
		total += b.Size()
	}
	return total
}

// Idle reports whether no request is queued or in flight.
func (e *MovementExecutor) Idle() bool { return e.busy.Load() == 0 }

// Stats snapshots the executor counters. Safe from any goroutine.
func (e *MovementExecutor) Stats() ExecutorStats {
	var out ExecutorStats
	for i := range e.tiers {
		p := &e.tiers[i]
		out.PerTier[i] = TierMoveStats{
			Scheduled:        p.scheduled.Load(),
			Completed:        p.completed.Load(),
			Failed:           p.failed.Load(),
			Shed:             p.shed.Load(),
			MaxInFlightBytes: p.maxInFlight.Load(),
			BudgetBytes:      e.cfg.BudgetBytes[i],
		}
	}
	return out
}
