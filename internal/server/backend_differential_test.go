package server_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"octostore/internal/backend"
	"octostore/internal/storage"
)

// The sim-vs-real differential acceptance test for the pluggable backends:
// one trace replayed through the sharded serving layer with no backend
// (pure virtual-clock) and again with a real-file backend attached to every
// shard. The backend contract says physical I/O is a synchronous mirror at
// the block-transfer seams — no events, no randomness — so both runs must
// land on identical tier residency, replica bytes, and capacity accounting,
// and the real run's bytes on disk must equal the control plane's ledger.

// backendDiffTrace is shardedDiffTrace scaled down (48 files of 2–9 MB) so
// the real run's physical I/O stays in the hundreds of MB: the control
// plane's decision sequence is what the differential compares, and it is
// size-shape-independent.
func backendDiffTrace() []diffOp {
	var ops []diffOp
	path := func(i int) string { return fmt.Sprintf("/data/d%02d/f%03d", i%16, i) }
	at := func(i int) time.Duration { return time.Duration(i) * 10 * time.Second }
	const files = 48
	step := 0
	for i := 0; i < files; i++ {
		size := int64(2+(i*5)%8) * storage.MB
		ops = append(ops, diffOp{at: at(step), kind: 0, path: path(i), size: size})
		step++
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < files; i += 3 {
			ops = append(ops, diffOp{at: at(step), kind: 1, path: path(i)})
			step++
		}
	}
	for i := 0; i < files; i += 10 {
		ops = append(ops, diffOp{at: at(step), kind: 2, path: path(i)})
		step++
	}
	return ops
}

func TestDifferentialRealBackendVsSim(t *testing.T) {
	ops := backendDiffTrace()
	seq := shardedOracle(t, ops)

	for _, shards := range []int{1, 4} {
		label := fmt.Sprintf("real/shards=%d", shards)
		root := t.TempDir()
		locals := make([]*backend.Local, shards)
		for i := range locals {
			l, err := backend.OpenLocal(backend.LocalConfig{
				Root: filepath.Join(root, fmt.Sprintf("shard%d", i)),
			})
			if err != nil {
				t.Fatal(err)
			}
			locals[i] = l
		}
		srv := runShardedReplayBackend(t, ops, shards, nil,
			func(i int) backend.Backend { return locals[i] })

		// The real-backend run must be indistinguishable from the virtual
		// oracle in every control-plane observable.
		compareShardedToOracle(t, label, seq, srv)

		// Physical ground truth: the replica files on disk, tier by tier,
		// must hold exactly the bytes the ledger says are used.
		var disk [3]int64
		for _, l := range locals {
			u, err := l.DiskUsage()
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range storage.AllMedia {
				disk[m] += u[m]
			}
		}
		for _, m := range storage.AllMedia {
			used, _ := srv.TierUsage(m)
			if disk[m] != used {
				t.Fatalf("%s: %s tier disk=%d ledger=%d", label, m, disk[m], used)
			}
		}

		// Vacuity: the run must have done real I/O on every tier it used,
		// with zero physical errors.
		all := make([]backend.Stats, len(locals))
		for i, l := range locals {
			all[i] = l.Stats()
		}
		st := backend.MergeStats(all...)
		if w := st.PerTier[storage.HDD].Write; w.Count == 0 || w.Bytes == 0 {
			t.Fatalf("%s: no physical HDD writes recorded (%+v)", label, w)
		}
		if w := st.PerTier[storage.Memory].Write; w.Count == 0 {
			t.Fatalf("%s: upgrades happened but no physical memory writes recorded", label)
		}
		for _, m := range storage.AllMedia {
			for _, op := range backend.Ops {
				if e := st.PerTier[m].Op(op).Errors; e != 0 {
					t.Fatalf("%s: %s %s recorded %d physical errors", label, m, op, e)
				}
			}
		}
		srv.Close()
	}
}
