// Package server is the concurrent serving layer over the tiered DFS: it
// wraps a dfs.FileSystem (plus an optional core.Manager) as a thread-safe
// service that any number of client goroutines drive simultaneously, while
// the deterministic single-threaded simulation core underneath stays
// untouched.
//
// The architecture is a single-writer core with a sharded read path:
//
//   - A dedicated core-loop goroutine owns the sim.Engine, the FileSystem,
//     and the Manager. Structural operations (create, delete, node churn,
//     quiesce) are commands applied there in arrival order, each clamped
//     forward to its virtual timestamp.
//   - The namespace is mirrored into striped shards keyed by a hash of the
//     parent directory (nsShards): resolve/stat/exists/list and the serving
//     tier decision run entirely on client goroutines under per-stripe read
//     locks, so metadata traffic in independent directories never
//     serializes.
//   - Access events ride a bounded MPSC ring (eventRing): the client hot
//     path is a shard lookup plus a lock-free push, and the core loop
//     drains the ring in batches, feeding the tracker, the candidate
//     index, and the upgrade hook off the client's critical path.
//   - Replica movement runs on the MovementExecutor (per-tier pools,
//     bounded queues, per-tier in-flight byte budgets, shedding) installed
//     as the Manager's Mover, so upgrades/downgrades overlap with serving
//     instead of competing with it.
//
// Virtual time: under live load (Config.TimeScale > 0) a pacer maps wall
// time onto the virtual clock so device transfers, periodic policy ticks,
// and movement all progress while clients hammer the service. With
// TimeScale == 0 the server is replay-driven: callers stamp each operation
// with an explicit virtual time (CreateAt/AccessAt/DeleteAt) and fence with
// Flush, which is how the differential tests replay one trace through the
// sequential simulator and through the server and compare final states.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/backend"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/obs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// Config tunes the serving layer.
type Config struct {
	// Shards is the namespace stripe count (rounded up to a power of two,
	// default 64).
	Shards int
	// RingCapacity is the access-event ring size (rounded up to a power of
	// two, default 16384). When full, events are dropped and counted.
	RingCapacity int
	// CmdBuffer is the command channel depth (default 256).
	CmdBuffer int
	// TimeScale maps wall time to virtual time for live traffic: a scale of
	// 60 advances the simulation one virtual minute per wall second. Zero
	// disables the pacer; operations then carry explicit virtual
	// timestamps (replay mode).
	TimeScale float64
	// PaceInterval is how often (wall clock) the pacer advances virtual
	// time under live load (default 1ms).
	PaceInterval time.Duration
	// Executor tunes the async movement executor.
	Executor ExecutorConfig
	// QuiesceMaxSteps bounds how many engine events one Flush drains before
	// giving up (policy ping-pong protection; default 5,000,000).
	QuiesceMaxSteps int
	// Tenants declares the multi-tenant workload: per-tenant read-latency
	// histograms, and — for tenants with a ReadSLO — the latency-SLO
	// admission controller. Empty keeps the server tenant-blind, and a
	// tenant list without SLOs adds no engine events (the differential
	// suite relies on both).
	Tenants []TenantConfig
	// SLO tunes the admission controller (used only when a tenant sets a
	// ReadSLO).
	SLO SLOConfig
	// Obs attaches the observability hub: metric registration at Start,
	// sampled per-op spans, and movement-provenance records from the
	// executor. Nil (the default) disables every hook behind a single
	// pointer check, leaving the differential suites bit-for-bit.
	Obs *obs.Hub
	// ObsShard labels this server's metrics and spans when several shards
	// share one hub.
	ObsShard int
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 64
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = 1 << 14
	}
	if c.CmdBuffer <= 0 {
		c.CmdBuffer = 256
	}
	if c.PaceInterval <= 0 {
		c.PaceInterval = time.Millisecond
	}
	if c.QuiesceMaxSteps <= 0 {
		c.QuiesceMaxSteps = 5_000_000
	}
}

// AccessResult describes how an access was served.
type AccessResult struct {
	// Tier is the fastest tier holding a full replica set at serve time.
	Tier storage.Media
	// Served is false when no tier had full residency (e.g. mid-churn); the
	// access is still recorded for the policies.
	Served bool
	// Latency is the tier-real virtual service time of the read (device
	// queueing + base latency + transfer) charged against the data plane's
	// shared physical channel. Zero when no plane is attached.
	Latency time.Duration
}

// FileInfo is the client-visible metadata snapshot of a served file.
type FileInfo struct {
	Path      string
	Size      int64
	Residency [3]bool
}

// command is one unit of core-loop work, applied at virtual time >= at.
type command struct {
	at  time.Time
	run func()
}

// Server is the concurrent front end. Construct with New, call Start, then
// any number of goroutines may use the client API concurrently. Close
// drains outstanding work and stops the core loop; afterwards the caller
// may touch the FileSystem directly again.
type Server struct {
	cfg    Config
	fs     *dfs.FileSystem
	engine *sim.Engine
	mgr    *core.Manager // nil for unmanaged serving

	ns   *nsShards
	ring *eventRing
	exec *MovementExecutor
	cmds chan command
	// plane is the file system's data plane, cached at Start so the client
	// read path charges tier-real service times without touching the
	// core-loop-owned fs. Nil disables latency modeling (free reads).
	plane storage.DataPlane
	// backend is the file system's physical backend, cached at Start like
	// the plane but only when it performs real I/O: the client read path
	// then streams real bytes per access and the measured wall-clock
	// latencies feed the read histograms. Nil (or an attached backend.Sim)
	// keeps the access path untouched.
	backend backend.Backend

	// Core-loop-owned state.
	byID            map[dfs.FileID]*handle
	createsInFlight int
	evBuf           []accessEvent
	closed          bool

	counters   serveCounters
	accessHist Histogram
	mutateHist Histogram
	readLat    [3]Histogram // tier-real virtual read latencies, by tier served

	// tenantSlot maps configured tenant ids to tenantLat indices; both are
	// immutable after New, so client goroutines read them lock-free.
	tenantSlot map[storage.TenantID]int
	tenantLat  []Histogram
	slo        *sloController // nil unless a tenant declares a ReadSLO
	sloTicker  *sim.Ticker

	wallStart time.Time
	virtStart time.Time

	// obs mirrors cfg.Obs (nil = disabled); loopBusyNS accumulates the core
	// loop's busy wall time for the utilization gauge, written only when obs
	// is enabled so the disabled loop stays free of clock reads.
	obs        *obs.Hub
	loopBusyNS atomic.Int64

	pacerStop chan struct{}
	wg        sync.WaitGroup
	started   bool
}

// New wraps a file system (and optional manager) as a serving layer. The
// caller must not touch fs, its engine, or mgr between Start and Close —
// the core loop owns them. When mgr is non-nil its movement requests are
// rerouted through the server's MovementExecutor.
func New(fs *dfs.FileSystem, mgr *core.Manager, cfg Config) *Server {
	cfg.applyDefaults()
	// Unless overridden, movement starts after the same command-path
	// latency the manager's core config models, so the serving path's
	// movement timing matches the sequential path's.
	if cfg.Executor.MoveLatency <= 0 && mgr != nil {
		cfg.Executor.MoveLatency = mgr.Context().Cfg.MoveLatency
	}
	s := &Server{
		cfg:    cfg,
		fs:     fs,
		engine: fs.Engine(),
		mgr:    mgr,
		ns:     newNSShards(cfg.Shards),
		ring:   newEventRing(cfg.RingCapacity),
		exec:   NewMovementExecutor(fs, cfg.Executor),
		cmds:   make(chan command, cfg.CmdBuffer),
		byID:   make(map[dfs.FileID]*handle),
	}
	if len(cfg.Tenants) > 0 {
		s.tenantSlot = make(map[storage.TenantID]int, len(cfg.Tenants))
		s.tenantLat = make([]Histogram, len(cfg.Tenants))
		for i, t := range cfg.Tenants {
			s.tenantSlot[t.ID] = i
		}
		s.slo = newSLOController(s, cfg.SLO, cfg.Tenants)
	}
	s.obs = cfg.Obs
	s.exec.setObs(cfg.Obs, cfg.ObsShard)
	if mgr != nil {
		mgr.SetMover(s.exec)
	}
	fs.AddListener(serverListener{s})
	// Node loss can remove a tier's representative replica without a
	// residency flip (the file stays fully resident via other nodes), so
	// membership changes re-publish every handle's per-tier device. The
	// hook runs on whatever loop applies the churn — always the core loop
	// while the server runs (Exec, scenario perturbations, shard fan-out).
	fs.AddMembershipHook(s.refreshDevices)
	return s
}

// Executor exposes the movement executor (stats are goroutine-safe).
func (s *Server) Executor() *MovementExecutor { return s.exec }

// Stats snapshots the serving counters.
func (s *Server) Stats() ServeStats { return s.counters.snapshot(s.ring.Dropped()) }

// AccessLatency returns the access-path latency histogram.
func (s *Server) AccessLatency() *Histogram { return &s.accessHist }

// MutateLatency returns the create/delete latency histogram.
func (s *Server) MutateLatency() *Histogram { return &s.mutateHist }

// ReadLatency returns the tier-real virtual read-latency histogram for one
// tier: the data-plane service times (queue + base + transfer) of accesses
// served from it. Empty without an attached plane.
func (s *Server) ReadLatency(m storage.Media) *Histogram { return &s.readLat[m] }

// TenantReadLatency returns the configured tenant's read-latency histogram
// across all tiers, or nil for an unknown tenant.
func (s *Server) TenantReadLatency(t storage.TenantID) *Histogram {
	if slot, ok := s.tenantSlot[t]; ok {
		return &s.tenantLat[slot]
	}
	return nil
}

// SLOStats snapshots the admission controller (zero without one).
func (s *Server) SLOStats() SLOStats {
	if s.slo == nil {
		return SLOStats{}
	}
	return s.slo.stats()
}

// Start indexes pre-existing files and launches the core loop (and, under
// live pacing, the wall-clock pacer).
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.plane = s.fs.DataPlane()
	if b := s.fs.Backend(); b != nil && b.Physical() {
		s.backend = b
	}
	for _, f := range s.fs.LiveFiles() {
		if s.fs.Complete(f) {
			s.indexFile(f)
		}
	}
	s.wallStart = time.Now()
	s.virtStart = s.engine.Now()
	s.registerObs()
	if s.slo != nil {
		// Installed before the core loop launches (the engine still belongs
		// to this goroutine here); ticks then run as engine events on the
		// core loop.
		s.sloTicker = s.engine.Every(s.slo.cfg.Interval, s.slo.tick)
	}
	s.wg.Add(1)
	go s.loop()
	if s.cfg.TimeScale > 0 {
		s.pacerStop = make(chan struct{})
		s.wg.Add(1)
		go s.pace()
	}
}

// Close quiesces and shuts the server down. All client goroutines must have
// stopped issuing operations first.
func (s *Server) Close() {
	if !s.started {
		return
	}
	if s.pacerStop != nil {
		close(s.pacerStop)
	}
	s.Flush()
	s.cmds <- command{run: func() { s.closed = true }}
	s.wg.Wait()
	s.started = false
	if s.sloTicker != nil {
		// The core loop has stopped; the engine belongs to this goroutine
		// again.
		s.sloTicker.Stop()
		s.sloTicker = nil
	}
	if s.mgr != nil {
		s.mgr.SetMover(nil)
	}
}

// Clock returns the current wall-mapped virtual time (zero in replay mode,
// meaning "at the core loop's current virtual time"). Open-loop drivers use
// it as the base for stamping intended arrival times onto submitted ops.
func (s *Server) Clock() time.Time { return s.clock() }

// clock maps wall time to the virtual timeline under live pacing; in replay
// mode it returns the zero time, meaning "at the core loop's current
// virtual time".
func (s *Server) clock() time.Time {
	if s.cfg.TimeScale <= 0 {
		return time.Time{}
	}
	return s.virtStart.Add(time.Duration(float64(time.Since(s.wallStart)) * s.cfg.TimeScale))
}

// pace periodically advances virtual time to the wall-mapped clock so
// transfers complete and periodic policy ticks fire while clients drive
// live load.
func (s *Server) pace() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.PaceInterval)
	defer t.Stop()
	for {
		select {
		case <-s.pacerStop:
			return
		case <-t.C:
			select {
			case s.cmds <- command{at: s.clock(), run: func() {}}:
			case <-s.pacerStop:
				return
			}
		}
	}
}

// loop is the core loop: the only goroutine that touches the engine, the
// file system, and the manager while the server runs.
func (s *Server) loop() {
	defer s.wg.Done()
	for !s.closed {
		select {
		case c := <-s.cmds:
			t0 := s.busyStart()
			s.drainRing()
			s.applyCmd(c)
			s.busyEnd(t0)
		case <-s.ring.wake:
			t0 := s.busyStart()
			s.drainRing()
			s.busyEnd(t0)
		}
	}
	// Final drain so no published event is silently lost.
	s.drainRing()
}

// applyCmd advances virtual time to the command's stamp and runs it.
func (s *Server) applyCmd(c command) {
	if !c.at.IsZero() && c.at.After(s.engine.Now()) {
		s.engine.RunUntil(c.at)
	}
	if c.run != nil {
		c.run()
	}
}

// drainRing applies published access events in batch: each event advances
// virtual time to its stamp and replays through dfs.RecordAccess, which
// feeds the tracker, the candidate index, and the manager's upgrade hook.
func (s *Server) drainRing() {
	s.evBuf = s.evBuf[:0]
	for {
		ev, ok := s.ring.pop()
		if !ok {
			break
		}
		s.evBuf = append(s.evBuf, ev)
	}
	if len(s.evBuf) == 0 {
		return
	}
	s.counters.batches.Add(1)
	for _, ev := range s.evBuf {
		if ev.at.After(s.engine.Now()) {
			s.engine.RunUntil(ev.at)
		}
		if f, ok := s.byID[ev.id]; ok && !f.file.Deleted() {
			s.fs.RecordAccess(f.file)
			s.counters.drained.Add(1)
		}
	}
}

// indexFile publishes a completed file to the striped namespace. Core loop
// only.
func (s *Server) indexFile(f *dfs.File) {
	h := &handle{id: f.ID(), path: f.Path(), size: f.Size(), file: f, blk0: -1}
	if blocks := f.Blocks(); len(blocks) > 0 {
		h.blk0, h.blk0Size = blocks[0].ID(), blocks[0].Size()
	}
	for _, m := range storage.AllMedia {
		if f.HasReplicaOn(m) {
			h.setDevice(m, tierDevice(f, m))
			h.setResident(m, true)
		}
	}
	s.byID[f.ID()] = h
	s.ns.put(h)
}

// refreshDevices re-publishes every handle's per-tier representative
// device; the membership hook runs it after node churn (see New). O(files),
// and churn is rare. Core loop only.
func (s *Server) refreshDevices() {
	// Guard on the server's cached plane/backend (the ones AccessAt uses),
	// not the fs's live ones: pre-Start churn may skip the walk (Start
	// re-indexes every handle anyway), and swapping either after Start is
	// unsupported.
	if s.plane == nil && s.backend == nil {
		return // pointers are only read for plane charging and real reads
	}
	for _, h := range s.byID {
		for _, m := range storage.AllMedia {
			if h.file.HasReplicaOn(m) {
				h.setDevice(m, tierDevice(h.file, m))
			}
		}
	}
}

// tierDevice picks the file's representative device on a tier (the first
// block's replica) for data-plane charging. Core loop only.
func tierDevice(f *dfs.File, m storage.Media) *storage.Device {
	blocks := f.Blocks()
	if len(blocks) == 0 {
		return nil
	}
	if r := blocks[0].ReplicaOn(m); r != nil {
		return r.Device()
	}
	return nil
}

// serverListener keeps the striped namespace coherent with the core:
// residency flips update handle masks, deletions unindex.
type serverListener struct{ s *Server }

// FileCreated implements dfs.Listener; indexing happens in the create
// command's completion (which runs right after this notification), so
// nothing to do here.
func (serverListener) FileCreated(*dfs.File) {}

// FileAccessed implements dfs.Listener.
func (serverListener) FileAccessed(*dfs.File) {}

// FileDeleted implements dfs.Listener.
func (l serverListener) FileDeleted(f *dfs.File) {
	if _, ok := l.s.byID[f.ID()]; ok {
		delete(l.s.byID, f.ID())
		l.s.ns.remove(f.Path())
	}
}

// FileTierChanged implements dfs.Listener: publish the flip to the handle
// so client reads pick their serving tier lock-free. The representative
// device is published before the residency bit turns on (and cleared after
// it turns off), so a reader that observes the bit finds a device.
func (l serverListener) FileTierChanged(f *dfs.File, media storage.Media, resident bool) {
	if h, ok := l.s.byID[f.ID()]; ok {
		if resident {
			h.setDevice(media, tierDevice(f, media))
			h.setResident(media, true)
		} else {
			h.setResident(media, false)
			h.setDevice(media, nil)
		}
	}
}

// TierDataAdded implements dfs.Listener.
func (serverListener) TierDataAdded(storage.Media) {}

// --- Client API ---

// CreateAt submits a file creation stamped with the given virtual time and
// returns a buffered channel that receives the final outcome once the write
// pipeline commits (or fails). The zero time means "now".
func (s *Server) CreateAt(path string, size int64, at time.Time) <-chan error {
	return s.CreateAtAs(path, size, at, storage.DefaultTenant)
}

// CreateAtAs is CreateAt with a tenant identity: the write pipeline's plane
// charges are tagged with the tenant (initial block writes happen
// synchronously inside the create call, so scoping the file system's active
// tenant around it suffices).
func (s *Server) CreateAtAs(path string, size int64, at time.Time, tenant storage.TenantID) <-chan error {
	res := make(chan error, 1)
	sp, spStart := s.sampleSpan("create", path, tenant)
	if sp != nil {
		sp.Bytes = size
	}
	start := time.Now()
	s.cmds <- command{at: at, run: func() {
		if sp != nil {
			// Time from submission until the core loop picks the command up —
			// the create's queueing delay behind other commands and drains.
			sp.RingNS = time.Since(spStart).Nanoseconds()
		}
		s.createsInFlight++
		s.fs.SetActiveTenant(tenant)
		s.fs.Create(path, size, func(f *dfs.File, err error) {
			s.createsInFlight--
			if err != nil {
				s.counters.createErrors.Add(1)
			} else {
				s.counters.creates.Add(1)
				s.indexFile(f)
			}
			s.mutateHist.Observe(time.Since(start))
			if sp != nil {
				msg := ""
				if err != nil {
					msg = err.Error()
				}
				s.finishSpan(sp, spStart, s.engine.Now(), msg)
			}
			res <- err
		})
		s.fs.SetActiveTenant(storage.DefaultTenant)
	}}
	return res
}

// Create writes a file and blocks until the write pipeline completes.
func (s *Server) Create(path string, size int64) error {
	return <-s.CreateAt(path, size, s.clock())
}

// CreateAs writes a file on behalf of a tenant, blocking for the outcome.
func (s *Server) CreateAs(path string, size int64, tenant storage.TenantID) error {
	return <-s.CreateAtAs(path, size, s.clock(), tenant)
}

// DeleteAt submits a deletion stamped with the given virtual time.
func (s *Server) DeleteAt(path string, at time.Time) <-chan error {
	res := make(chan error, 1)
	clean, err := dfs.CleanPath(path)
	if err != nil {
		res <- err
		return res
	}
	start := time.Now()
	s.cmds <- command{at: at, run: func() {
		err := s.fs.Delete(clean)
		if err != nil {
			s.counters.deleteErrors.Add(1)
		} else {
			s.counters.deletes.Add(1)
		}
		s.mutateHist.Observe(time.Since(start))
		res <- err
	}}
	return res
}

// Delete removes a file, blocking for the outcome.
func (s *Server) Delete(path string) error {
	return <-s.DeleteAt(path, s.clock())
}

// detachAt removes a file at the stamped virtual time via the migration-
// teardown path: DetachFile releases the replicas and unindexes the handle
// without counting a client deletion. The sharded delete path uses it to
// clear the secondary copy during a migration epoch after the primary
// delete already counted the client's one logical deletion.
func (s *Server) detachAt(path string, at time.Time) <-chan error {
	res := make(chan error, 1)
	s.cmds <- command{at: at, run: func() {
		_, err := s.fs.DetachFile(path)
		res <- err
	}}
	return res
}

// resolve looks a path up in the striped namespace. Paths are indexed in
// canonical form, so a miss retries once through CleanPath — every
// metadata entry point shares this, keeping non-canonical spellings
// consistent across Access/Stat/Exists and the mutation paths (which
// canonicalize inside dfs).
func (s *Server) resolve(path string) (*handle, bool) {
	h, ok := s.ns.get(path)
	if !ok {
		if clean, err := dfs.CleanPath(path); err == nil && clean != path {
			h, ok = s.ns.get(clean)
		}
	}
	return h, ok
}

// AccessAt records a client access at the given virtual time and returns
// the tier that serves it, with the tier-real read latency when a data
// plane is attached. This is the hot path: one striped-shard lookup, one
// lock-free ring push, one atomic charge against the shared device
// channel, zero core-loop involvement.
func (s *Server) AccessAt(path string, at time.Time) (AccessResult, error) {
	return s.AccessAtAs(path, at, storage.DefaultTenant)
}

// AccessAtAs is AccessAt with a tenant identity: the plane charge carries
// the tenant (weighted-fair arbitration on a multi-tenant plane) and the
// read latency lands in the tenant's histogram as well as the tier's.
func (s *Server) AccessAtAs(path string, at time.Time, tenant storage.TenantID) (AccessResult, error) {
	// Span capture costs one nil-check call when obs is off; the stage
	// stamps below are all guarded on sp.
	sp, spStart := s.sampleSpan("access", path, tenant)
	h, ok := s.resolve(path)
	if !ok {
		s.counters.accessMisses.Add(1)
		s.finishSpan(sp, spStart, at, "not found")
		return AccessResult{}, fmt.Errorf("server: %w: %q", dfs.ErrNotFound, path)
	}
	if sp != nil {
		sp.ResolveNS = time.Since(spStart).Nanoseconds()
	}
	s.counters.accesses.Add(1)
	s.ring.push(accessEvent{id: h.id, at: at})
	if sp != nil {
		sp.RingNS = time.Since(spStart).Nanoseconds()
	}
	tier, served := h.bestTier()
	if !served {
		s.counters.noReplica.Add(1)
		s.finishSpan(sp, spStart, at, "no resident tier")
		return AccessResult{}, nil
	}
	s.counters.servedByTier[tier].Add(1)
	s.counters.bytesServed.Add(h.size)
	res := AccessResult{Tier: tier, Served: true}
	if sp != nil {
		sp.DecideNS = time.Since(spStart).Nanoseconds()
		sp.Tier = tier.String()
		sp.Bytes = h.size
	}
	// Charge the read's service time against the physical device channel.
	// A zero stamp (replay-mode Access with no pacer) carries no usable
	// virtual instant, so those reads stay unmodeled.
	if s.plane != nil && !at.IsZero() {
		if dev := h.device(tier); dev != nil {
			g := s.plane.Serve(storage.IORequest{
				DeviceID: dev.ID(),
				Media:    tier,
				Dir:      storage.Read,
				Class:    storage.ClassServe,
				Tenant:   tenant,
				Bytes:    h.size,
				At:       at,
			})
			res.Latency = g.Latency()
			// With a physical backend attached the histograms record the
			// measured wall-clock read below instead of the virtual grant
			// (the grant still books the channel for contention accounting).
			if s.backend == nil {
				s.readLat[tier].Observe(res.Latency)
				if slot, ok := s.tenantSlot[tenant]; ok {
					s.tenantLat[slot].Observe(res.Latency)
				}
			}
			if sp != nil {
				sp.QueueNS = g.Queue.Nanoseconds()
				sp.BaseNS = g.Base.Nanoseconds()
				sp.TransferNS = g.Transfer.Nanoseconds()
				sp.Saturated = g.Saturated
			}
		}
	}
	// Physical read: stream the representative block's real bytes from the
	// serving tier on the client goroutine, and feed the measured wall time
	// into the read histograms — the latencies are real, not modeled. A
	// failed read (e.g. the replica moved between the residency load and
	// the open) is counted in the backend's stats and served virtually.
	if s.backend != nil && h.blk0 >= 0 {
		if dev := h.device(tier); dev != nil {
			d, err := s.backend.Read(backend.Request{
				Media: tier, Class: storage.ClassServe, Tenant: tenant,
				DeviceID: dev.ID(), BlockID: h.blk0, Bytes: h.blk0Size,
			})
			if err == nil {
				res.Latency = d
				s.readLat[tier].Observe(d)
				if slot, ok := s.tenantSlot[tenant]; ok {
					s.tenantLat[slot].Observe(d)
				}
			}
		}
	}
	s.finishSpan(sp, spStart, at, "")
	return res, nil
}

// Access records an access now and returns the serving tier, observing the
// access-path latency histogram.
func (s *Server) Access(path string) (AccessResult, error) {
	return s.AccessAs(path, storage.DefaultTenant)
}

// AccessAs records a tenant's access now and returns the serving tier.
func (s *Server) AccessAs(path string, tenant storage.TenantID) (AccessResult, error) {
	start := time.Now()
	res, err := s.AccessAtAs(path, s.clock(), tenant)
	s.accessHist.Observe(time.Since(start))
	return res, err
}

// Stat returns the metadata snapshot of a served file (shard-only).
func (s *Server) Stat(path string) (FileInfo, error) {
	s.counters.stats.Add(1)
	h, ok := s.resolve(path)
	if !ok {
		return FileInfo{}, fmt.Errorf("server: %w: %q", dfs.ErrNotFound, path)
	}
	return FileInfo{Path: h.path, Size: h.size, Residency: h.residency()}, nil
}

// Exists reports whether a served file exists (shard-only).
func (s *Server) Exists(path string) bool {
	_, ok := s.resolve(path)
	return ok
}

// List returns the sorted file names directly under dir (shard-only).
func (s *Server) List(dir string) []string {
	s.counters.lists.Add(1)
	if names := s.ns.list(dir); len(names) > 0 {
		return names
	}
	if clean, err := dfs.CleanPath(dir); err == nil && clean != dir {
		return s.ns.list(clean)
	}
	return nil
}

// Exec runs fn inside the core loop with exclusive access to the file
// system — the escape hatch for perturbations (node churn) and final-state
// inspection in tests and tools. It blocks until fn returns.
func (s *Server) Exec(fn func(*dfs.FileSystem)) {
	done := make(chan struct{})
	s.cmds <- command{at: s.clock(), run: func() {
		fn(s.fs)
		close(done)
	}}
	<-done
}

// Flush fences the serving layer: it blocks until every access event
// published before the call is drained, all in-flight creates commit, and
// the movement executor is idle, stepping the simulation forward as needed.
// Under live load this is a best-effort barrier (new traffic may arrive
// concurrently); with clients stopped it is a full quiescence point.
func (s *Server) Flush() {
	done := make(chan struct{})
	s.cmds <- command{at: s.clock(), run: func() {
		s.quiesce()
		close(done)
	}}
	<-done
}

// quiesce drains outstanding asynchronous work inside the core loop. The
// manager's periodic ticker keeps the event queue non-empty forever, so the
// loop steps the engine only while real work (creates, movement) is
// pending, exactly like the sequential harness's "step until the workload
// completes" pattern.
func (s *Server) quiesce() {
	steps := 0
	for {
		s.drainRing()
		// Absorb queued commands without blocking: concurrent client ops
		// and pacer ticks must not starve behind a flush.
		for absorbed := true; absorbed; {
			select {
			case c := <-s.cmds:
				s.applyCmd(c)
			default:
				absorbed = false
			}
		}
		if s.createsInFlight == 0 && s.exec.Idle() && s.ring.empty() && len(s.cmds) == 0 {
			return
		}
		if steps >= s.cfg.QuiesceMaxSteps {
			return // policy ping-pong protection; invariants hold regardless
		}
		if s.engine.Step() {
			steps++
			continue
		}
		// Outstanding work but no runnable event: wait for a command or a
		// ring publication to make progress.
		select {
		case c := <-s.cmds:
			s.applyCmd(c)
		case <-s.ring.wake:
		}
	}
}
