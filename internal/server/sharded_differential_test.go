package server_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"octostore/internal/backend"
	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// The sharded differential acceptance test: one trace of create / access /
// delete operations replayed (a) through the sequential single-engine
// simulator and (b) through the sharded serving layer at shards=4 (and the
// shards=1 degenerate case), fencing after every operation. The trace is
// chosen so the policy decisions are shard-invariant — PinnedHDD placement
// (every create lands fully on HDD) plus the OSA upgrade policy with a
// memory tier that globally fits the accessed set — so the final tier
// residency of every file and the aggregate capacity accounting must be
// identical even though the sharded run splits capacity into quotas and
// must drive the two-phase borrow protocol to fit its upgrades.

func shardedDiffSpec() storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 4 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 32 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

func shardedDiffCluster() cluster.Config {
	return cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: shardedDiffSpec()}
}

// shardedDiffTrace builds a deterministic op list spread over 16 parent
// directories: 120 creates (16–160 MB), accesses over a 40-file hot set
// (total well under the 4 GB global memory tier), and deletes of both
// accessed and never-accessed files.
func shardedDiffTrace() []diffOp {
	var ops []diffOp
	path := func(i int) string { return fmt.Sprintf("/data/d%02d/f%03d", i%16, i) }
	at := func(i int) time.Duration { return time.Duration(i) * 10 * time.Second }
	const files = 120
	step := 0
	for i := 0; i < files; i++ {
		size := int64(16+(i*7)%145) * storage.MB // 16..160 MB, deterministic
		ops = append(ops, diffOp{at: at(step), kind: 0, path: path(i), size: size})
		step++
	}
	// Hot set: every third file, accessed twice (second access exercises the
	// already-resident fast path of OSA).
	for round := 0; round < 2; round++ {
		for i := 0; i < files; i += 3 {
			ops = append(ops, diffOp{at: at(step), kind: 1, path: path(i)})
			step++
		}
	}
	// Deletes: some accessed (memory-resident) files, some cold ones.
	for i := 0; i < files; i += 10 {
		ops = append(ops, diffOp{at: at(step), kind: 2, path: path(i)})
		step++
	}
	return ops
}

// shardedOracle replays the trace through the untouched sequential path:
// one engine, the full-capacity cluster, PinnedHDD placement, OSA upgrades
// via the inline Replication Monitor.
func shardedOracle(t *testing.T, ops []diffOp) *dfs.FileSystem {
	t.Helper()
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, shardedDiffCluster())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 7, ClientRate: 2000e6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.MonitorConcurrency = 64
	ctx := core.NewContext(fs, cfg)
	up, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(ctx, nil, up)
	mgr.Start()
	mon := mgr.Monitor()
	creating := 0
	quiesce := func() {
		for (creating > 0 || mon.Active() > 0 || mon.QueueLen() > 0) && engine.Step() {
		}
	}
	base := engine.Now()
	for _, o := range ops {
		engine.RunUntil(base.Add(o.at))
		switch o.kind {
		case 0:
			creating++
			fs.Create(o.path, o.size, func(*dfs.File, error) { creating-- })
		case 1:
			if f, err := fs.Open(o.path); err == nil {
				fs.RecordAccess(f)
			}
		case 2:
			_ = fs.Delete(o.path)
		}
		quiesce()
	}
	quiesce()
	mgr.Stop()
	return fs
}

// newShardedReplayServer builds and starts the replay-mode sharded server
// the differential tests share: PinnedHDD placement, OSA upgrades, quarter
// quotas. plane (optional) is attached to every shard's cluster view.
func newShardedReplayServer(t *testing.T, shards int, plane storage.DataPlane) *server.ShardedServer {
	t.Helper()
	return newShardedReplayServerBackend(t, shards, plane, nil)
}

// newShardedReplayServerBackend is the same fixture with a per-shard storage
// backend attached (nil mkBackend = the default virtual-only path).
func newShardedReplayServerBackend(t *testing.T, shards int, plane storage.DataPlane, mkBackend func(int) backend.Backend) *server.ShardedServer {
	t.Helper()
	huge := int64(1) << 60
	inf := math.Inf(1)
	clCfg := shardedDiffCluster()
	clCfg.Plane = plane
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  shards,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 7, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			cfg := core.DefaultConfig()
			cfg.MonitorConcurrency = 64
			ctx := core.NewContext(fs, cfg)
			up, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, nil, up), nil
		},
		Quota: server.QuotaConfig{
			// A quarter of each device granted up front: per-shard memory
			// quota (256 MB) cannot hold the shard's slice of the hot set,
			// so upgrades must borrow through the two-phase protocol.
			InitialFraction:   0.25,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 10 * time.Second,
		},
		Backend: mkBackend,
		Inner: server.Config{ // replay mode: TimeScale 0
			Executor: server.ExecutorConfig{
				WorkersPerTier:  64,
				QueueDepth:      1 << 14,
				BudgetBytes:     [3]int64{huge, huge, huge},
				RateBytesPerSec: [3]float64{inf, inf, inf},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	return srv
}

// runShardedReplay replays the trace through the sharded engine in replay
// mode, fencing after every op, and returns the server un-closed so the
// caller can inspect and then close it.
func runShardedReplay(t *testing.T, ops []diffOp, shards int, plane storage.DataPlane) *server.ShardedServer {
	t.Helper()
	return runShardedReplayBackend(t, ops, shards, plane, nil)
}

func runShardedReplayBackend(t *testing.T, ops []diffOp, shards int, plane storage.DataPlane, mkBackend func(int) backend.Backend) *server.ShardedServer {
	t.Helper()
	srv := newShardedReplayServerBackend(t, shards, plane, mkBackend)
	base := sim.Epoch
	for _, o := range ops {
		at := base.Add(o.at)
		switch o.kind {
		case 0:
			// Fire-and-fence: the Flush below steps the shard engine until
			// the write pipeline commits (receiving here would deadlock —
			// replay mode only advances virtual time inside the fence).
			srv.CreateAt(o.path, o.size, at)
		case 1:
			_, _ = srv.AccessAt(o.path, at)
		case 2:
			srv.DeleteAt(o.path, at)
		}
		srv.Flush()
	}
	srv.Flush()
	return srv
}

func compareShardedToOracle(t *testing.T, label string, seq *dfs.FileSystem, srv *server.ShardedServer) {
	t.Helper()
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("%s: sequential invariants: %v", label, err)
	}
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("%s: sharded invariants: %v", label, violations)
	}
	seqRes, srvRes := seq.TierResidency(), srv.TierResidency()
	if len(seqRes) != len(srvRes) {
		t.Fatalf("%s: file count diverged: sequential %d, sharded %d", label, len(seqRes), len(srvRes))
	}
	for path, want := range seqRes {
		got, ok := srvRes[path]
		if !ok {
			t.Fatalf("%s: %q exists only in the sequential path", label, path)
		}
		if got != want {
			t.Fatalf("%s: residency of %q diverged: sequential %v, sharded %v", label, path, want, got)
		}
	}
	if a, b := seq.LiveReplicaBytes(), srv.LiveReplicaBytes(); a != b {
		t.Fatalf("%s: live replica bytes diverged: sequential %d, sharded %d", label, a, b)
	}
	for _, m := range storage.AllMedia {
		ua, ca := seq.Cluster().TierUsage(m)
		ub, cb := srv.TierUsage(m)
		if ua != ub {
			t.Fatalf("%s: %s used diverged: sequential %d, sharded %d", label, m, ua, ub)
		}
		// The sharded capacity splits into granted quota + pooled + reserved;
		// physical totals must agree with the oracle's cluster.
		ledger := srv.Ledger()
		if total := ledger.TotalBytes(m); total != ca {
			t.Fatalf("%s: %s total capacity diverged: sequential %d, ledger %d", label, m, ca, total)
		}
		if got := cb + ledger.FreeBytes(m) + ledger.ReservedBytes(m); got != ca {
			t.Fatalf("%s: %s conservation: granted %d + pool = %d, want %d", label, m, cb, got, ca)
		}
	}
	// Vacuity guards: the trace must actually drive upgrades, and the
	// sharded run must actually exercise the cross-shard borrow protocol.
	if seq.Stats().BytesUpgradedTo[storage.Memory] == 0 {
		t.Fatalf("%s: trace drove no upgrades; differential test is vacuous", label)
	}
}

func TestDifferentialShardedVsSequential(t *testing.T) {
	ops := shardedDiffTrace()
	seq := shardedOracle(t, ops)

	sharded := runShardedReplay(t, ops, 4, nil)
	compareShardedToOracle(t, "shards=4", seq, sharded)
	if q := sharded.QuotaStats(); q.Borrows == 0 {
		t.Fatalf("shards=4 run never borrowed quota; the cross-shard protocol went unexercised (%+v)", q)
	}
	sharded.Close()

	// The degenerate case: one shard must also match the oracle, with the
	// whole capacity granted up front and zero ledger traffic.
	single := runShardedReplay(t, ops, 1, nil)
	compareShardedToOracle(t, "shards=1", seq, single)
	if q := single.QuotaStats(); q.Borrows != 0 || q.ReturnedBytes != 0 {
		t.Fatalf("shards=1 run touched the ledger: %+v", q)
	}
	single.Close()
}
