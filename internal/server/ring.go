package server

import (
	"sync/atomic"
	"time"

	"octostore/internal/dfs"
)

// accessEvent is one client access waiting to be fed into the policy layer:
// the file it touched and the virtual time it happened at.
type accessEvent struct {
	id dfs.FileID
	at time.Time
}

// eventRing is the bounded MPSC ring that decouples the client access hot
// path from the statistics/policy machinery: any number of client
// goroutines push (lock-free, never blocking), and the core loop drains in
// batches, replaying each event into the tracker, the candidate index, and
// the upgrade hook. The design is the classic bounded sequence-number queue
// (Vyukov): every slot carries a sequence counter that encodes whether it
// is free for the enqueue position or holds a published event for the
// dequeue position, so producers claim slots with a single CAS and the
// consumer observes only fully published events.
//
// When the ring is full the event is dropped and counted rather than
// blocking the client: access events are advisory statistics, and shedding
// them under overload degrades policy freshness, not correctness.
type eventRing struct {
	mask    uint64
	slots   []ringSlot
	enq     atomic.Uint64
	deq     atomic.Uint64 // consumed only by the core loop
	dropped atomic.Int64
	// wake is the consumer doorbell: producers try-send after a push so the
	// core loop drains promptly, and the buffered capacity of one collapses
	// any number of concurrent pushes into a single wakeup (batching).
	wake chan struct{}
}

// newEventRing builds a ring with capacity rounded up to a power of two.
func newEventRing(capacity int) *eventRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	r := &eventRing{
		mask:  uint64(size - 1),
		slots: make([]ringSlot, size),
		wake:  make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

type ringSlot struct {
	seq atomic.Uint64
	ev  accessEvent
}

// push publishes an event; it reports false (and counts a drop) when the
// ring is full. Safe for any number of concurrent producers.
func (r *eventRing) push(ev accessEvent) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.ev = ev
				slot.seq.Store(pos + 1)
				select {
				case r.wake <- struct{}{}:
				default:
				}
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The slot still holds an unconsumed event one lap behind: full.
			r.dropped.Add(1)
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = r.enq.Load()
		}
	}
}

// pop removes the oldest published event. Single consumer only.
func (r *eventRing) pop() (accessEvent, bool) {
	pos := r.deq.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return accessEvent{}, false
	}
	ev := slot.ev
	slot.ev = accessEvent{}
	slot.seq.Store(pos + r.mask + 1)
	r.deq.Store(pos + 1)
	return ev, true
}

// empty reports whether no published event is currently available.
func (r *eventRing) empty() bool {
	pos := r.deq.Load()
	return r.slots[pos&r.mask].seq.Load() != pos+1
}

// Dropped returns how many events were shed because the ring was full.
func (r *eventRing) Dropped() int64 { return r.dropped.Load() }
