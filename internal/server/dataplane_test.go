package server_test

// Data-plane acceptance tests.
//
// 1. The no-op plane must be invisible: replaying the sharded differential
//    trace with storage.NopPlane attached (shards=1 and shards=4) must
//    reproduce the plane-less PR 4 semantics bit-for-bit — identical final
//    residency, capacity accounting, and executor stats — and still match
//    the sequential oracle, so the differential suite keeps its oracle.
//
// 2. The contended plane must actually arbitrate: two shards whose
//    movement lands on the same physical memory/HDD devices must each see
//    strictly lower movement throughput than the same workload run with
//    per-shard (isolated) planes, because the shared per-device channels
//    serialize what per-shard device views cannot see.

import (
	"fmt"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func TestNoopDataPlaneDifferential(t *testing.T) {
	ops := shardedDiffTrace()
	seq := shardedOracle(t, ops)
	for _, shards := range []int{1, 4} {
		label := fmt.Sprintf("noop-plane shards=%d", shards)
		plain := runShardedReplay(t, ops, shards, nil)
		nop := runShardedReplay(t, ops, shards, storage.NopPlane{})

		// Both runs must match the sequential oracle...
		compareShardedToOracle(t, label, seq, nop)

		// ...and each other exactly: residency, accounting, executor stats.
		plainRes, nopRes := plain.TierResidency(), nop.TierResidency()
		if len(plainRes) != len(nopRes) {
			t.Fatalf("%s: file count diverged: plane-less %d, nop %d", label, len(plainRes), len(nopRes))
		}
		for path, want := range plainRes {
			if got := nopRes[path]; got != want {
				t.Fatalf("%s: residency of %q diverged: plane-less %v, nop %v", label, path, want, got)
			}
		}
		if a, b := plain.LiveReplicaBytes(), nop.LiveReplicaBytes(); a != b {
			t.Fatalf("%s: live bytes diverged: plane-less %d, nop %d", label, a, b)
		}
		for _, m := range storage.AllMedia {
			ua, ca := plain.TierUsage(m)
			ub, cb := nop.TierUsage(m)
			if ua != ub || ca != cb {
				t.Fatalf("%s: %s usage diverged: plane-less %d/%d, nop %d/%d", label, m, ua, ca, ub, cb)
			}
		}
		if a, b := plain.ExecutorStats(), nop.ExecutorStats(); a != b {
			t.Fatalf("%s: executor stats diverged:\nplane-less %+v\nnop        %+v", label, a, b)
		}
		plain.Close()
		nop.Close()
	}
}

// contentionDirs picks two parent directories that route to the two shards
// of a 2-shard server (shard routing is the routing hash of the parent dir
// mod shards).
func contentionDirs(t *testing.T) [2]string {
	t.Helper()
	var dirs [2]string
	var have [2]bool
	for c := 'a'; c <= 'z'; c++ {
		d := "/load-" + string(c)
		s := server.RouteHash(d) % 2
		if !have[s] {
			dirs[s], have[s] = d, true
		}
		if have[0] && have[1] {
			return dirs
		}
	}
	t.Fatal("could not find dirs for both shards")
	return dirs
}

// runContention replays a two-shard upgrade-heavy workload. When shared is
// true, one ContendedPlane spans both shards' cluster views (the physical
// truth); otherwise each shard gets a private plane with the same profiles
// (the counterfactual where the device is not shared). It returns, per
// shard, the bytes upgraded into memory and the shard's final virtual time.
func runContention(t *testing.T, shared bool) (moved [2]int64, end [2]time.Duration) {
	t.Helper()
	planeCfg := storage.PlaneConfig{MaxQueue: time.Hour}
	clCfg := cluster.Config{
		Workers:      1,
		SlotsPerNode: 4,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 4 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
		},
	}
	if shared {
		clCfg.Plane = storage.NewContendedPlane(planeCfg)
	}
	huge := int64(1) << 60
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  2,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 5, Replication: 1, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			ctx := core.NewContext(fs, core.DefaultConfig())
			up, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, nil, up), nil
		},
		Quota: server.QuotaConfig{InitialFraction: 0.5},
		Inner: server.Config{ // replay mode
			Executor: server.ExecutorConfig{
				WorkersPerTier: 64,
				QueueDepth:     1 << 12,
				BudgetBytes:    [3]int64{huge, huge, huge},
				MoveLatency:    100 * time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !shared {
		srv.Exec(func(_ int, fs *dfs.FileSystem) {
			fs.SetDataPlane(storage.NewContendedPlane(planeCfg))
		})
	}
	srv.Start()

	dirs := contentionDirs(t)
	const filesPerShard = 24
	base := sim.Epoch
	for i := 0; i < filesPerShard; i++ {
		at := base.Add(time.Duration(i) * 100 * time.Millisecond)
		for _, d := range dirs {
			srv.CreateAt(fmt.Sprintf("%s/f%02d", d, i), 64*storage.MB, at)
		}
	}
	srv.Flush()

	// Two access rounds: each access triggers an OSA upgrade (HDD → the one
	// physical memory device). The round boundary makes the cross-shard
	// backlog visible to BOTH shards — the second-flushed shard queues
	// behind the first inside a round, the first-flushed shard queues
	// behind the other's previous round.
	at := base.Add(time.Minute)
	for round := 0; round < 2; round++ {
		lo, hi := round*filesPerShard/2, (round+1)*filesPerShard/2
		for i := lo; i < hi; i++ {
			for _, d := range dirs {
				if _, err := srv.AccessAt(fmt.Sprintf("%s/f%02d", d, i), at); err != nil {
					t.Fatalf("access round %d file %d: %v", round, i, err)
				}
			}
		}
		srv.Flush()
	}

	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("shared=%v: invariant violations: %v", shared, v)
	}
	srv.Exec(func(i int, fs *dfs.FileSystem) {
		moved[i] = fs.Stats().BytesUpgradedTo[storage.Memory]
		end[i] = fs.Engine().Now().Sub(sim.Epoch)
	})
	srv.Close()
	return moved, end
}

func TestSharedDeviceContentionSlowsBothShards(t *testing.T) {
	isoMoved, isoEnd := runContention(t, false)
	shMoved, shEnd := runContention(t, true)
	for i := 0; i < 2; i++ {
		if isoMoved[i] == 0 {
			t.Fatalf("shard %d moved no bytes; contention test is vacuous", i)
		}
		if shMoved[i] != isoMoved[i] {
			t.Fatalf("shard %d moved bytes diverged: isolated %d, shared %d", i, isoMoved[i], shMoved[i])
		}
		isoTp := float64(isoMoved[i]) / isoEnd[i].Seconds()
		shTp := float64(shMoved[i]) / shEnd[i].Seconds()
		t.Logf("shard %d: isolated %.1f MB/s over %v, shared %.1f MB/s over %v",
			i, isoTp/1e6, isoEnd[i], shTp/1e6, shEnd[i])
		if shTp >= isoTp {
			t.Errorf("shard %d: shared-device movement throughput %.1f MB/s not strictly below isolated %.1f MB/s",
				i, shTp/1e6, isoTp/1e6)
		}
	}
}
