package server

import "testing"

func TestRouteTableCovers(t *testing.T) {
	cases := []struct {
		prefix, dir string
		want        bool
	}{
		{"/hot", "/hot", true},
		{"/hot", "/hot/d1", true},
		{"/hot", "/hot/d1/deep", true},
		{"/hot", "/hotel", false},
		{"/hot", "/", false},
		{"/", "/anything", true},
		{"/", "/", true},
		{"/hot/d1", "/hot", false},
	}
	for _, c := range cases {
		if got := covers(c.prefix, c.dir); got != c.want {
			t.Errorf("covers(%q, %q) = %v, want %v", c.prefix, c.dir, got, c.want)
		}
	}
}

func TestRouteTableLongestPrefixWins(t *testing.T) {
	var rt routeTable
	if rt.lookup("/hot/d1") != nil {
		t.Fatal("empty table matched")
	}
	rt.install([]routeEntry{
		{prefix: "/hot", dst: 1, state: routeCommitted},
		{prefix: "/hot/d1", dst: 2, state: routeMigrating},
	})
	if e := rt.lookup("/hot/d0"); e == nil || e.dst != 1 {
		t.Fatalf("/hot/d0 -> %+v, want dst 1", e)
	}
	if e := rt.lookup("/hot/d1/deep"); e == nil || e.dst != 2 {
		t.Fatalf("/hot/d1/deep -> %+v, want dst 2 (longest prefix)", e)
	}
	if e := rt.lookup("/cold"); e != nil {
		t.Fatalf("/cold matched %+v", e)
	}
}

func TestRouteTableUpsertReplacesByPrefix(t *testing.T) {
	var rt routeTable
	rt.upsert(routeEntry{prefix: "/hot", dst: 1, state: routeMigrating})
	rt.upsert(routeEntry{prefix: "/hot", dst: 1, state: routeCommitted})
	entries := rt.entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	if entries[0].state != routeCommitted {
		t.Fatalf("state = %v, want committed", entries[0].state)
	}
	// An old snapshot captured before the flip keeps its view (COW).
	rt.upsert(routeEntry{prefix: "/other", dst: 3, state: routeMigrating})
	if len(rt.entries()) != 2 {
		t.Fatal("second prefix did not install")
	}
}
