package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/storage"
)

// TestShardedTenantTrafficSurvivesChurn is the multi-tenant race-suite
// acceptance test (run under -race): two tenants drive tagged traffic from 8
// concurrent clients through a weighted-fair plane — with the SLO admission
// controller live and one tenant's read target deliberately unmeetable —
// while a worker fails on every shard and a fresh one joins. At quiescence
// the invariant suite, the plane's per-tenant accounting, and the refcounted
// channel registry (no channel stranded for the dead node, all channels
// present for the new one) must all be clean.
func TestShardedTenantTrafficSurvivesChurn(t *testing.T) {
	const (
		shards       = 4
		clients      = 8
		sharedFiles  = 48
		opsPerClient = 150
	)
	tenants := []server.TenantConfig{
		{ID: 1, Weight: 3},
		// An unmeetable 1 ms read SLO keeps the admission controller
		// breaching (and deferring movement) throughout the churn window.
		{ID: 2, Weight: 1, ReadSLO: time.Millisecond},
	}
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards: shards,
		Cluster: cluster.Config{
			Workers: 5, SlotsPerNode: 4, Spec: servedWorkerSpec(),
			Plane: storage.NewContendedPlane(storage.PlaneConfig{
				Tenants: server.PlaneTenants(tenants),
			}),
		},
		DFS: dfs.Config{Mode: dfs.ModeOctopus, Seed: 11, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			ctx := core.NewContext(fs, core.DefaultConfig())
			d, err := policy.NewDowngrade("lru", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			u, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, d, u), nil
		},
		Quota: server.QuotaConfig{
			InitialFraction:   0.5,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 20 * time.Second,
		},
		Inner: server.Config{
			TimeScale:    240,
			PaceInterval: time.Millisecond,
			Tenants:      tenants,
			SLO: server.SLOConfig{
				Interval:    2 * time.Second,
				MinSamples:  8,
				DeferWindow: 5 * time.Second,
			},
			Executor: server.ExecutorConfig{
				WorkersPerTier:  2,
				QueueDepth:      32,
				BudgetBytes:     [3]int64{256 * storage.MB, 1 * storage.GB, 2 * storage.GB},
				RateBytesPerSec: [3]float64{float64(64 * storage.MB), float64(128 * storage.MB), float64(256 * storage.MB)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	tenantOf := func(c int) storage.TenantID { return storage.TenantID(1 + c%2) }
	shared := make([]string, sharedFiles)
	for i := 0; i < sharedFiles; i++ {
		shared[i] = fmt.Sprintf("/hot/d%02d/f%03d", i%12, i)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, sharedFiles)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := c; i < sharedFiles; i += clients {
				size := (16 + rng.Int63n(112)) * storage.MB
				if err := srv.CreateAs(shared[i], size, tenantOf(c)); err != nil {
					errCh <- fmt.Errorf("preload %s: %w", shared[i], err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		select {
		case <-time.After(150 * time.Millisecond):
		case <-stopChurn:
			return
		}
		victim := -1
		srv.Exec(func(shard int, fs *dfs.FileSystem) {
			if shard != 0 {
				return
			}
			for _, n := range fs.Cluster().Nodes() {
				if n.ID() > victim {
					victim = n.ID()
				}
			}
		})
		srv.FailNode(victim)
		select {
		case <-time.After(150 * time.Millisecond):
		case <-stopChurn:
			return
		}
		srv.AddNode(servedWorkerSpec(), 4)
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := tenantOf(c)
			rng := rand.New(rand.NewSource(int64(7000 + c)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(sharedFiles-1))
			var own []string
			for i := 0; i < opsPerClient; i++ {
				switch r := rng.Float64(); {
				case r < 0.72:
					if _, err := srv.AccessAs(shared[zipf.Uint64()], tenant); err != nil {
						t.Errorf("client %d access: %v", c, err)
						return
					}
				case r < 0.80:
					if _, err := srv.Stat(shared[rng.Intn(sharedFiles)]); err != nil {
						t.Errorf("client %d stat: %v", c, err)
						return
					}
				case r < 0.95 || len(own) == 0:
					path := fmt.Sprintf("/scratch/c%d/f%04d", c, i)
					if err := srv.CreateAs(path, (4+rng.Int63n(28))*storage.MB, tenant); err != nil {
						t.Errorf("client %d create: %v", c, err)
						return
					}
					own = append(own, path)
				default:
					path := own[len(own)-1]
					own = own[:len(own)-1]
					if err := srv.Delete(path); err != nil && !errors.Is(err, dfs.ErrBusy) {
						t.Errorf("client %d delete: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()

	srv.Flush()
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants violated after tenant churn load: %v", violations)
	}
	cp := srv.Plane().(*storage.ContendedPlane)
	if err := cp.CheckAccounting(); err != nil {
		t.Fatalf("plane tenant accounting diverged: %v", err)
	}
	for _, ts := range cp.TenantStats() {
		if ts.Requests == 0 || ts.Bytes == 0 {
			t.Fatalf("tenant %d drove no plane traffic: %+v", ts.Tenant, ts)
		}
	}
	for _, id := range []storage.TenantID{1, 2} {
		if h := srv.TenantReadLatency(id); h == nil || h.Count() == 0 {
			t.Fatalf("tenant %d recorded no read latencies", id)
		}
	}
	// The refcounted channel registry is the satellite regression: after a
	// FailNode on every shard and an AddNode, the plane must hold exactly
	// one channel set per live physical device — nothing stranded for the
	// dead worker, nothing missing for the new one.
	liveDevices := 0
	srv.Exec(func(shard int, fs *dfs.FileSystem) {
		if shard != 0 {
			return
		}
		for _, n := range fs.Cluster().Nodes() {
			liveDevices += len(n.AllDevices())
		}
	})
	if got := cp.Stats().Devices; got != liveDevices {
		t.Fatalf("plane holds %d device channels, cluster has %d live devices (stranded or dropped channels)", got, liveDevices)
	}
	srv.Close()
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants violated after close: %v", violations)
	}
}
