package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// TestExecutorDeferHoldsThenDrains pins down the SLO controller's lever: a
// Defer holds every admission (burst tokens available, slots free), an
// earlier deadline never pulls the hold in, and the wake event at the
// deadline drains the queue with no further prodding — deferred moves are
// postponed, not lost.
func TestExecutorDeferHoldsThenDrains(t *testing.T) {
	engine, fs, files := executorFixture(t, 4, 32*storage.MB)
	ex := NewMovementExecutor(fs, ExecutorConfig{
		WorkersPerTier: 2, QueueDepth: 16,
		BudgetBytes:     [3]int64{1 << 40, 1 << 40, 1 << 40},
		RateBytesPerSec: [3]float64{1e12, 1e12, 1e12},
		MoveLatency:     10 * time.Millisecond,
	})
	deadline := engine.Now().Add(5 * time.Second)
	ex.Defer(deadline)
	if got := ex.DeferredUntil(); !got.Equal(deadline) {
		t.Fatalf("deferred until %v, want %v", got, deadline)
	}
	// Deferring to an earlier instant must be a no-op: the deadline only
	// ever moves out.
	ex.Defer(engine.Now().Add(2 * time.Second))
	if got := ex.DeferredUntil(); !got.Equal(deadline) {
		t.Fatalf("earlier Defer pulled the deadline in: %v", got)
	}

	var doneAt []time.Time
	for _, f := range files {
		f := f
		ex.Enqueue(core.MoveRequest{File: f, From: storage.HDD, To: storage.SSD,
			Done: func(err error) {
				if err != nil {
					t.Errorf("deferred move failed: %v", err)
				}
				doneAt = append(doneAt, engine.Now())
			}})
	}
	st := ex.Stats().PerTier[storage.SSD]
	if st.Scheduled != 4 || st.AdmittedBytes != 0 || st.Shed != 0 {
		t.Fatalf("deferred executor admitted early: %+v", st)
	}
	engine.Run()
	if len(doneAt) != 4 || !ex.Idle() {
		t.Fatalf("drained %d/4 moves, idle %v", len(doneAt), ex.Idle())
	}
	for i, at := range doneAt {
		if at.Before(deadline) {
			t.Fatalf("move %d completed at %v, before the defer deadline %v", i, at, deadline)
		}
	}
	if got := ex.Stats().Defers; got != 1 {
		t.Fatalf("Defers = %d, want 1 (extending Defer counted, no-op did not)", got)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorRefillWakeKeepsFIFO exhausts the SSD bucket, parks a large
// move at the head of the queue, and checks that later small moves — which
// the residual tokens could cover — wait behind it: refill wakes admit
// strictly in FIFO order, so sustained small moves cannot starve a big one.
func TestExecutorRefillWakeKeepsFIFO(t *testing.T) {
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: diffWorkerSpecInternal()})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{64 * storage.MB, 96 * storage.MB, 16 * storage.MB, 16 * storage.MB}
	files := make([]*dfs.File, 0, len(sizes))
	for i, size := range sizes {
		fs.Create(fmt.Sprintf("/fifo/%d", i), size, func(f *dfs.File, err error) {
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		})
	}
	engine.Run()

	budget := [3]int64{1 << 40, 100 * storage.MB, 1 << 40}
	var rates [3]float64
	rates[storage.SSD] = float64(64 * storage.MB)
	ex := NewMovementExecutor(fs, ExecutorConfig{
		// Slots are never the constraint: only tokens gate admission.
		WorkersPerTier: 4, QueueDepth: 16, BudgetBytes: budget, RateBytesPerSec: rates,
	})
	start := engine.Now()
	var order []int
	for i, f := range files {
		i, f := i, f
		ex.Enqueue(core.MoveRequest{File: f, From: storage.HDD, To: storage.SSD,
			Done: func(err error) {
				if err != nil {
					t.Errorf("move %d failed: %v", i, err)
				}
				order = append(order, i)
			}})
	}
	engine.Run()
	// The 64 MB head drains the full bucket to 36 MB; the 96 MB move then
	// blocks on refill with 32 MB of small moves queued behind it that the
	// residual tokens could pay for. FIFO means they complete in enqueue
	// order anyway (equal MoveLatency, monotone admission times).
	if want := []int{0, 1, 2, 3}; len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Fatalf("completion order %v, want %v (small moves bypassed the blocked head)", order, want)
	}
	stats := ex.Stats()
	if v := stats.CheckBudgets(); v != "" {
		t.Fatal(v)
	}
	// And the refill was binding: pushing 192 MB through a 100 MB bucket at
	// 64 MB/s keeps the last admission past (192-100)/64 ≈ 1.44 virtual
	// seconds, plus the 5 s move latency.
	if elapsed := engine.Now().Sub(start).Seconds(); elapsed < 6.4 {
		t.Fatalf("batch drained in %.2f virtual seconds; head never waited for refill", elapsed)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorCheckBudgetsConcurrent reads Stats().CheckBudgets from racing
// goroutines while the owning loop admits, refills, and completes moves (run
// under -race): every interim snapshot must satisfy the token-bucket
// invariant — AdmittedBytes <= BudgetBytes + Rate*VirtualSeconds — because
// refill publishes the virtual-clock sample before tokens are spent.
func TestExecutorCheckBudgetsConcurrent(t *testing.T) {
	engine, fs, files := executorFixture(t, 12, 32*storage.MB)
	budget := [3]int64{1 << 40, 64 * storage.MB, 1 << 40}
	var rates [3]float64
	rates[storage.SSD] = float64(64 * storage.MB)
	ex := NewMovementExecutor(fs, ExecutorConfig{
		WorkersPerTier: 2, QueueDepth: 32, BudgetBytes: budget, RateBytesPerSec: rates,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := ex.Stats().CheckBudgets(); v != "" {
					t.Error(v)
					return
				}
				ex.Idle() // exercised concurrently too
			}
		}()
	}
	done := 0
	for _, f := range files {
		ex.Enqueue(core.MoveRequest{File: f, From: storage.HDD, To: storage.SSD,
			Done: func(err error) {
				if err != nil {
					t.Errorf("move failed: %v", err)
				}
				done++
			}})
	}
	engine.Run()
	close(stop)
	wg.Wait()
	if done != 12 || !ex.Idle() {
		t.Fatalf("completed %d/12, idle %v", done, ex.Idle())
	}
	if v := ex.Stats().CheckBudgets(); v != "" {
		t.Fatal(v)
	}
}
