package server_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// The rebalancing differential acceptance test: one deterministic trace —
// creates across hot and cold subtrees, skewed accesses concentrated on
// three directories that all hash to the same shard, then deletes — is
// replayed twice through the shards=4 serving layer, once with the
// rebalancer off (pure static routing) and once with it on (detection
// ticks interleaved, subtree migrations, epoch flips). Because migration
// only relocates metadata between engines, both runs must converge to the
// bit-identical final namespace: same files, same per-file tier residency,
// same live bytes, same per-tier used capacity — while the on-run actually
// moves subtrees (vacuity-guarded) and the global ledger conservation
// equation holds through every borrow the migrations drove.

const rebalTick = 3 // trace op kind: run one detection round

// collidingHotDirs returns n directories under /hot that all hash to the
// same shard at the given shard count — the adversarial layout that pins
// one shard under static routing.
func collidingHotDirs(n, shards int) []string {
	target := -1
	var dirs []string
	for i := 0; len(dirs) < n && i < 10000; i++ {
		d := fmt.Sprintf("/hot/d%02d", i)
		if target == -1 {
			target = server.RouteShard(d, shards)
		}
		if server.RouteShard(d, shards) == target {
			dirs = append(dirs, d)
		}
	}
	return dirs
}

func rebalanceTrace(hotDirs []string) []diffOp {
	var ops []diffOp
	step := 0
	at := func() time.Duration { step++; return time.Duration(step) * 2 * time.Second }
	hotPath := func(d, i int) string { return fmt.Sprintf("%s/f%03d", hotDirs[d], i) }
	coldPath := func(i int) string { return fmt.Sprintf("/cold/d%02d/f%03d", i%8, i) }
	const hotPerDir, cold = 8, 40
	for d := range hotDirs {
		for i := 0; i < hotPerDir; i++ {
			ops = append(ops, diffOp{at: at(), kind: 0, path: hotPath(d, i), size: int64(16+(d*hotPerDir+i)%48) * storage.MB})
		}
	}
	for i := 0; i < cold; i++ {
		ops = append(ops, diffOp{at: at(), kind: 0, path: coldPath(i), size: int64(8+i%24) * storage.MB})
	}
	// Skewed access rounds with a detection tick after each: every tick sees
	// a fresh window dominated by the hot subtrees and migrates the hottest
	// one still pinned to the hot shard.
	for round := 0; round < len(hotDirs)+1; round++ {
		for rep := 0; rep < 6; rep++ {
			for d := range hotDirs {
				for i := 0; i < hotPerDir; i++ {
					ops = append(ops, diffOp{at: at(), kind: 1, path: hotPath(d, i)})
				}
			}
		}
		for i := 0; i < cold; i += 4 {
			ops = append(ops, diffOp{at: at(), kind: 1, path: coldPath(i)})
		}
		ops = append(ops, diffOp{kind: rebalTick})
	}
	// Post-migration mutations through the flipped routes: deletes of both
	// migrated and cold files, accesses to what remains.
	for d := range hotDirs {
		ops = append(ops, diffOp{at: at(), kind: 2, path: hotPath(d, 0)})
	}
	for i := 0; i < cold; i += 10 {
		ops = append(ops, diffOp{at: at(), kind: 2, path: coldPath(i)})
	}
	for d := range hotDirs {
		for i := 1; i < hotPerDir; i++ {
			ops = append(ops, diffOp{at: at(), kind: 1, path: hotPath(d, i)})
		}
	}
	return ops
}

// runRebalanceReplay replays the trace at shards=4 in replay mode. The
// rebalancer config is identical in both runs; only Enabled differs, and
// RebalanceTick is a no-op when disabled, so the two runs execute the same
// driver code path.
func runRebalanceReplay(t *testing.T, ops []diffOp, enabled bool) *server.ShardedServer {
	t.Helper()
	huge := int64(1) << 60
	inf := math.Inf(1)
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  4,
		Cluster: shardedDiffCluster(),
		DFS:     dfs.Config{Mode: dfs.ModeOctopus, Seed: 7, ClientRate: 2000e6},
		Quota: server.QuotaConfig{
			InitialFraction:   0.25,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 10 * time.Second,
		},
		Inner: server.Config{ // replay mode: TimeScale 0
			Executor: server.ExecutorConfig{
				WorkersPerTier:  64,
				QueueDepth:      1 << 14,
				BudgetBytes:     [3]int64{huge, huge, huge},
				RateBytesPerSec: [3]float64{inf, inf, inf},
			},
		},
		Rebalance: server.RebalanceConfig{
			Enabled:  enabled,
			HotRatio: 1.2,
			MinOps:   32,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	base := sim.Epoch
	for _, o := range ops {
		switch o.kind {
		case 0:
			srv.CreateAt(o.path, o.size, base.Add(o.at)) // fire-and-fence
		case 1:
			_, _ = srv.AccessAt(o.path, base.Add(o.at))
		case 2:
			srv.DeleteAt(o.path, base.Add(o.at))
		case rebalTick:
			srv.RebalanceTick()
		}
		srv.Flush()
	}
	srv.Flush()
	return srv
}

func TestDifferentialRebalanceOnVsOff(t *testing.T) {
	hotDirs := collidingHotDirs(3, 4)
	if len(hotDirs) != 3 {
		t.Fatalf("found %d colliding hot dirs, want 3", len(hotDirs))
	}
	ops := rebalanceTrace(hotDirs)

	off := runRebalanceReplay(t, ops, false)
	on := runRebalanceReplay(t, ops, true)

	// Vacuity: the on-run must actually detect, migrate, and flip — and the
	// off-run must not.
	st := on.RebalanceStats()
	if st.Completed == 0 || st.EpochFlips == 0 || st.FilesMoved == 0 || st.BytesMoved == 0 {
		t.Fatalf("rebalancer-on run moved nothing: %+v", st)
	}
	if st.Routes == 0 {
		t.Fatalf("no route overrides installed: %+v", st)
	}
	if offSt := off.RebalanceStats(); offSt.Started != 0 {
		t.Fatalf("rebalancer-off run migrated: %+v", offSt)
	}
	if spread := st.Spread; spread <= 0 {
		t.Fatalf("no shard-load spread observed: %+v", st)
	}

	// Both runs stand on their own invariants (per-shard accounting, deep
	// structural checks, ledger conservation through every migration borrow).
	if v := off.Verify(); len(v) > 0 {
		t.Fatalf("off-run invariants: %v", v)
	}
	if v := on.Verify(); len(v) > 0 {
		t.Fatalf("on-run invariants: %v", v)
	}

	// Bit-identical namespace convergence.
	offRes, onRes := off.TierResidency(), on.TierResidency()
	if len(offRes) != len(onRes) {
		t.Fatalf("file count diverged: off %d, on %d", len(offRes), len(onRes))
	}
	for path, want := range offRes {
		got, ok := onRes[path]
		if !ok {
			t.Fatalf("%q exists only in the off-run", path)
		}
		if got != want {
			t.Fatalf("residency of %q diverged: off %v, on %v", path, want, got)
		}
	}
	if a, b := off.LiveReplicaBytes(), on.LiveReplicaBytes(); a != b {
		t.Fatalf("live replica bytes diverged: off %d, on %d", a, b)
	}
	for _, m := range storage.AllMedia {
		ua, _ := off.TierUsage(m)
		ub, _ := on.TierUsage(m)
		if ua != ub {
			t.Fatalf("%s used diverged: off %d, on %d", m, ua, ub)
		}
	}

	// The migrated subtrees serve through their flipped routes.
	for _, d := range hotDirs {
		names := on.List(d)
		if len(names) == 0 {
			t.Fatalf("migrated dir %s lists empty", d)
		}
		if got := off.List(d); len(got) != len(names) {
			t.Fatalf("listing of %s diverged: off %d names, on %d", d, len(got), len(names))
		}
		for _, n := range names {
			p := d + "/" + n
			if !on.Exists(p) {
				t.Fatalf("migrated file %s not served", p)
			}
			a, errA := off.Stat(p)
			b, errB := on.Stat(p)
			if errA != nil || errB != nil {
				t.Fatalf("stat %s: off %v, on %v", p, errA, errB)
			}
			if a.Size != b.Size || a.Residency != b.Residency {
				t.Fatalf("stat of %s diverged: off %+v, on %+v", p, a, b)
			}
		}
	}

	on.Close()
	off.Close()
}
