package server

import (
	"sync/atomic"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// QuotaConfig tunes the sharded capacity accounting: how much of each tier
// a shard is granted up front, in what granularity it borrows more from the
// global pool, and when it gives unused quota back.
type QuotaConfig struct {
	// InitialFraction is the fraction of each device's physical capacity
	// granted to shard quotas at construction, split evenly across shards;
	// the remainder seeds the ledger's free pool (default 0.5; forced to 1
	// for a single shard, which makes shards=1 the exact single-writer
	// degenerate case with an empty pool).
	InitialFraction float64
	// BorrowChunk rounds borrow requests up, amortising ledger traffic
	// (default 64 MB).
	BorrowChunk int64
	// ReconcileInterval is the virtual-time cadence of quota reconciliation:
	// each shard returns capacity beyond max(initial grant, used+slack) to
	// the pool (default 30s; negative disables).
	ReconcileInterval time.Duration
	// ReturnSlack is the free headroom a shard keeps above its used bytes
	// when returning quota (default 2×BorrowChunk).
	ReturnSlack int64
}

func (c *QuotaConfig) applyDefaults(shards int) {
	if c.InitialFraction <= 0 || c.InitialFraction > 1 {
		c.InitialFraction = 0.5
	}
	if shards <= 1 {
		c.InitialFraction = 1
	}
	if c.BorrowChunk <= 0 {
		c.BorrowChunk = 64 * storage.MB
	}
	if c.ReconcileInterval == 0 {
		c.ReconcileInterval = 30 * time.Second
	}
	if c.ReturnSlack <= 0 {
		c.ReturnSlack = 2 * c.BorrowChunk
	}
}

// QuotaStats counts one shard's (or, summed, the whole server's) traffic
// against the global capacity ledger.
type QuotaStats struct {
	Borrows        int64 // successful two-phase borrow rounds
	BorrowFailures int64 // rounds the pool could not cover
	BorrowedBytes  int64 // total quota pulled from the pool
	ReturnedBytes  int64 // total quota reconciled back to the pool
}

// shardQuota is one shard's side of the sharded accounting layer: it grows
// the shard's cluster view out of the global ledger through the two-phase
// reserve/commit protocol and periodically reconciles unused quota back.
// All methods except the atomic stat reads run on the shard loop.
type shardQuota struct {
	ledger *cluster.TierLedger
	cl     *cluster.Cluster
	cfg    QuotaConfig
	// baseline is the capacity granted at construction (plus joined nodes);
	// reconciliation never shrinks a shard below it, so an idle shard keeps
	// serving from its original quota without churning the ledger.
	baseline [3]int64

	borrows       atomic.Int64
	borrowFails   atomic.Int64
	borrowedBytes atomic.Int64
	returnedBytes atomic.Int64
}

func newShardQuota(ledger *cluster.TierLedger, cl *cluster.Cluster, cfg QuotaConfig, baseline [3]int64) *shardQuota {
	return &shardQuota{ledger: ledger, cl: cl, cfg: cfg, baseline: baseline}
}

func (q *shardQuota) stats() QuotaStats {
	return QuotaStats{
		Borrows:        q.borrows.Load(),
		BorrowFailures: q.borrowFails.Load(),
		BorrowedBytes:  q.borrowedBytes.Load(),
		ReturnedBytes:  q.returnedBytes.Load(),
	}
}

// bestDevice returns the node's device of the media with the most free
// space, or nil.
func bestDevice(n *cluster.Node, media storage.Media) *storage.Device {
	var best *storage.Device
	for _, d := range n.Devices(media) {
		if best == nil || d.Free() > best.Free() {
			best = d
		}
	}
	return best
}

// EnsureSpread grows the shard's quota so that, on each of up to `nodes`
// distinct nodes, some device of the tier has at least perNode free bytes —
// the shape a block-placement or replica-move plan needs. The total deficit
// is claimed from the ledger in one reservation (rounded up to the borrow
// chunk when the pool allows), applied to the devices, and committed; if the
// pool cannot cover even the exact deficit, or the shard has no device of
// the tier left, nothing changes and false is returned.
func (q *shardQuota) EnsureSpread(tier storage.Media, perNode int64, nodes int) bool {
	return q.EnsureSpreadFor(storage.DefaultTenant, tier, perNode, nodes)
}

// EnsureSpreadFor is EnsureSpread on behalf of a tenant: the ledger claim is
// additionally admitted against the tenant's borrow budget, so a tenant at
// quota cannot grow the shard even when the pool has capacity.
func (q *shardQuota) EnsureSpreadFor(tenant storage.TenantID, tier storage.Media, perNode int64, nodes int) bool {
	if nodes <= 0 {
		nodes = 1
	}
	type growth struct {
		dev *storage.Device
		by  int64
	}
	var plan []growth
	var deficit int64
	seen := 0
	for _, n := range q.cl.Nodes() {
		d := bestDevice(n, tier)
		if d == nil {
			continue
		}
		seen++
		if free := d.Free(); free < perNode {
			plan = append(plan, growth{dev: d, by: perNode - free})
			deficit += perNode - free
		}
		if seen == nodes {
			break
		}
	}
	if seen == 0 {
		q.borrowFails.Add(1)
		return false
	}
	if deficit == 0 {
		return true
	}
	// Phase one: claim pool capacity (chunk-rounded when it fits, the exact
	// deficit otherwise).
	ask := deficit
	if rem := ask % q.cfg.BorrowChunk; rem != 0 {
		ask += q.cfg.BorrowChunk - rem
	}
	res, ok := q.ledger.ReserveFor(tenant, tier, ask)
	if !ok && ask != deficit {
		res, ok = q.ledger.ReserveFor(tenant, tier, deficit)
	}
	if !ok {
		q.borrowFails.Add(1)
		return false
	}
	// Phase two: apply the reservation to this shard's cluster view, then
	// commit — the capacity now lives in the shard's quota. Chunk-rounding
	// surplus lands on the first grown device.
	extra := res.Bytes() - deficit
	for _, g := range plan {
		g.dev.Grow(g.by)
	}
	if extra > 0 {
		plan[0].dev.Grow(extra)
	}
	res.Commit()
	q.borrows.Add(1)
	q.borrowedBytes.Add(res.Bytes())
	return true
}

// EnsureCreate grows quota ahead of retrying a create that failed on
// capacity: every replica of every block must find a device, so each of
// `replication` distinct nodes needs room for one full copy of the file.
// Placement falls back across tiers in every mode, so growing the lowest
// tier (every mode's tier of last resort) is sufficient to admit the write.
func (q *shardQuota) EnsureCreate(fs *dfs.FileSystem, size int64) bool {
	return q.EnsureSpread(storage.HDD, size, fs.Replication())
}

// EnsureCreateFor is EnsureCreate charged to a tenant's borrow budget.
func (q *shardQuota) EnsureCreateFor(tenant storage.TenantID, fs *dfs.FileSystem, size int64) bool {
	return q.EnsureSpreadFor(tenant, storage.HDD, size, fs.Replication())
}

// Reconcile returns quota the shard no longer needs: for each tier, any
// capacity beyond max(baseline, used+slack) is shrunk off the devices and
// returned to the ledger's free pool, in whole borrow-chunks so the quota
// does not flap. Shard loop only.
func (q *shardQuota) Reconcile() {
	for _, tier := range storage.AllMedia {
		used, capacity := q.cl.TierUsage(tier)
		target := used + q.cfg.ReturnSlack
		if target < q.baseline[tier] {
			target = q.baseline[tier]
		}
		excess := capacity - target
		excess -= excess % q.cfg.BorrowChunk
		if excess <= 0 {
			continue
		}
		var reclaimed int64
		for _, n := range q.cl.Nodes() {
			for _, d := range n.Devices(tier) {
				if reclaimed >= excess {
					break
				}
				reclaimed += d.ShrinkUpTo(excess - reclaimed)
			}
		}
		if reclaimed > 0 {
			q.ledger.Return(tier, reclaimed)
			q.returnedBytes.Add(reclaimed)
		}
	}
}

// clampBaseline lowers the reconciliation floor to the shard's current tier
// capacities. Called after node loss: the departed node took its quota
// (initial grant plus any borrowed growth) with it, and the floor must not
// hold open capacity that no longer exists.
func (q *shardQuota) clampBaseline() {
	for _, tier := range storage.AllMedia {
		if _, capacity := q.cl.TierUsage(tier); q.baseline[tier] > capacity {
			q.baseline[tier] = capacity
		}
	}
}

// nodeJoined raises the baseline by the joining node's granted share.
func (q *shardQuota) nodeJoined(granted [3]int64) {
	for t := range q.baseline {
		q.baseline[t] += granted[t]
	}
}
