package jobs

import (
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// TestChainedInputWaitsForProducer verifies the producer-consumer path: a
// job whose input is an earlier job's output waits (with retries) until
// the output exists, then completes normally.
func TestChainedInputWaitsForProducer(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	tr := &workload.Trace{Name: "chain", Duration: time.Hour}
	tr.Files = []workload.FileSpec{
		{Path: "/in/src", Size: 32 * storage.MB, Bin: workload.BinA},
	}
	tr.Jobs = []workload.Job{
		{ID: 0, Arrival: time.Minute, InputPath: "/in/src", InputBytes: 32 * storage.MB,
			CPUPerTask: 2 * time.Second, Bin: workload.BinA,
			OutputPath: "/out/stage1", OutputBytes: 16 * storage.MB},
		// Consumer arrives BEFORE the producer finishes writing: it must
		// retry until /out/stage1 exists.
		{ID: 1, Arrival: time.Minute + time.Second, InputPath: "/out/stage1",
			InputBytes: 16 * storage.MB, CPUPerTask: time.Second, Bin: workload.BinA},
	}
	stats, err := Run(fs, tr, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != 2 {
		t.Fatalf("jobs completed = %d", len(stats.Jobs))
	}
	consumer := stats.Jobs[1]
	if consumer.ID != 1 {
		consumer = stats.Jobs[0]
	}
	// The consumer's completion includes the dependency wait, so it must
	// finish after the producer.
	producer := stats.Jobs[0]
	if producer.ID != 0 {
		producer = stats.Jobs[1]
	}
	if !consumer.Finished.After(producer.Finished) {
		t.Fatal("consumer finished before its producer")
	}
	if consumer.CompletionTime() < inputRetryDelay {
		t.Fatalf("consumer completion %v too fast to have waited for its input", consumer.CompletionTime())
	}
}

// TestMissingInputEventuallyFails verifies the retry path gives up: an
// input that never appears fails the run after the retry budget.
func TestMissingInputEventuallyFails(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	tr := &workload.Trace{Name: "orphan", Duration: time.Hour}
	tr.Files = []workload.FileSpec{
		{Path: "/in/a", Size: 16 * storage.MB, Bin: workload.BinA},
	}
	tr.Jobs = []workload.Job{
		{ID: 0, Arrival: time.Minute, InputPath: "/never/created",
			InputBytes: 16 * storage.MB, CPUPerTask: time.Second, Bin: workload.BinA},
	}
	if _, err := Run(fs, tr, DefaultOptions(), nil); err == nil {
		t.Fatal("run with an orphan input did not fail")
	}
}

// TestGeneratedTraceWithChainsRuns executes a generated FB trace (which
// contains producer-consumer chains) end to end on plain HDFS.
func TestGeneratedTraceWithChainsRuns(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 4, Spec: storage.NodeSpec{
		{Media: storage.Memory, Capacity: 512 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 4 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 32 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
	}})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModeHDFS, BlockSize: 16 * storage.MB, Seed: 9})
	p := workload.FB()
	p.NumJobs = 80
	p.Duration = time.Hour
	p.BinFractions = [workload.NumBins]float64{0.9, 0.1, 0, 0, 0, 0}
	tr := workload.Generate(p, 3)
	stats, err := Run(fs, tr, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != 80 {
		t.Fatalf("jobs = %d", len(stats.Jobs))
	}
	for i := range stats.Jobs {
		if stats.Jobs[i].Finished.IsZero() {
			t.Fatalf("job %d has no finish time", stats.Jobs[i].ID)
		}
	}
}
