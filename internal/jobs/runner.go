// Package jobs executes a workload trace against the tiered DFS: a
// MapReduce-like scheduler assigns one map task per input block to node
// slots, tasks read their block from the best available replica, burn CPU,
// and jobs optionally persist an output file. The runner records the
// per-job metrics the paper's evaluation is built on: completion time,
// consumed task-seconds (the cluster-efficiency measure), the storage tier
// that served every block read, and whether a memory replica existed at
// read time (the access-vs-location hit-ratio distinction of Figure 9).
package jobs

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// Options tunes the runner.
type Options struct {
	// TaskOverhead is per-task setup cost (container launch, JVM reuse...).
	TaskOverhead time.Duration
	// JobOverhead is per-job scheduling/startup latency before tasks run.
	JobOverhead time.Duration
	// PreloadParallel is how many input files are created concurrently
	// while staging the trace's data (SWIM-style pre-generation).
	PreloadParallel int
	// LocalityBias is the probability that a task lands on a node holding
	// one of its block's replicas. Big-data schedulers are data-local but
	// tier-blind (Section 7.2: "current schedulers do not account for the
	// presence of multiple storage tiers"), and in multi-tenant clusters
	// locality is only achieved part of the time — this knob models both.
	LocalityBias float64
	// TierAffinity is the probability that, when locality is achieved, the
	// chosen replica holder is the one with the fastest local replica.
	// Delay scheduling and per-node load correlate slot choice with the
	// node that recently served (and therefore holds the hot replica of)
	// the data; the residual 1-TierAffinity models the tier-blindness that
	// separates access-based from location-based hit ratios in Figure 9.
	TierAffinity float64
	// Seed randomises preload order and locality draws.
	Seed int64
}

// DefaultOptions returns runner defaults.
func DefaultOptions() Options {
	return Options{
		TaskOverhead:    1 * time.Second,
		JobOverhead:     3 * time.Second,
		PreloadParallel: 16,
		LocalityBias:    0.55,
		TierAffinity:    0.60,
		Seed:            1,
	}
}

func (o *Options) applyDefaults() {
	d := DefaultOptions()
	if o.TaskOverhead <= 0 {
		o.TaskOverhead = d.TaskOverhead
	}
	if o.JobOverhead <= 0 {
		o.JobOverhead = d.JobOverhead
	}
	if o.PreloadParallel <= 0 {
		o.PreloadParallel = d.PreloadParallel
	}
	if o.LocalityBias <= 0 {
		o.LocalityBias = d.LocalityBias
	}
	if o.TierAffinity <= 0 {
		o.TierAffinity = d.TierAffinity
	}
}

// JobStats records one executed job.
type JobStats struct {
	ID          int
	Bin         workload.Bin
	Arrival     time.Time
	Finished    time.Time
	InputBytes  int64
	OutputBytes int64
	// TaskSeconds is the total slot time consumed by the job's tasks plus
	// its output write: the "resources consumed" behind the paper's
	// cluster-efficiency metric.
	TaskSeconds float64
	// ReadsByMedia / BytesByMedia count block reads by the tier that
	// served them.
	ReadsByMedia [3]int64
	BytesByMedia [3]int64
	// MemLocationBlocks counts blocks that had a memory replica somewhere
	// in the cluster right before the read (Figure 9's "based on memory
	// locations"); MemLocationBytes sums their sizes.
	MemLocationBlocks int64
	MemLocationBytes  int64
	TotalBlocks       int64
}

// CompletionTime is the job's end-to-end latency including queueing.
func (j *JobStats) CompletionTime() time.Duration { return j.Finished.Sub(j.Arrival) }

// RunStats is the outcome of executing a trace.
type RunStats struct {
	Trace           *workload.Trace
	Jobs            []JobStats
	PreloadDuration time.Duration
	// FSBaseline is the dfs stats snapshot taken after preload, so that
	// experiment metrics cover only the job phase.
	FSBaseline dfs.Stats
	FSFinal    dfs.Stats
}

// MeanCompletionByBin averages completion time per bin (zero when a bin is
// empty).
func (r *RunStats) MeanCompletionByBin() [workload.NumBins]time.Duration {
	var sums [workload.NumBins]time.Duration
	var counts [workload.NumBins]int
	for i := range r.Jobs {
		j := &r.Jobs[i]
		sums[j.Bin] += j.CompletionTime()
		counts[j.Bin]++
	}
	var out [workload.NumBins]time.Duration
	for b := range sums {
		if counts[b] > 0 {
			out[b] = sums[b] / time.Duration(counts[b])
		}
	}
	return out
}

// TaskSecondsByBin sums consumed task time per bin.
func (r *RunStats) TaskSecondsByBin() [workload.NumBins]float64 {
	var out [workload.NumBins]float64
	for i := range r.Jobs {
		j := &r.Jobs[i]
		out[j.Bin] += j.TaskSeconds
	}
	return out
}

// ReadsByBinMedia aggregates block reads per bin and serving tier.
func (r *RunStats) ReadsByBinMedia() [workload.NumBins][3]int64 {
	var out [workload.NumBins][3]int64
	for i := range r.Jobs {
		j := &r.Jobs[i]
		for m := 0; m < 3; m++ {
			out[j.Bin][m] += j.ReadsByMedia[m]
		}
	}
	return out
}

// Totals sums reads, bytes and location hits across all jobs.
func (r *RunStats) Totals() (reads, memReads, blocks, memLocBlocks int64, bytes, memBytes int64) {
	for i := range r.Jobs {
		j := &r.Jobs[i]
		for m := 0; m < 3; m++ {
			reads += j.ReadsByMedia[m]
			bytes += j.BytesByMedia[m]
		}
		memReads += j.ReadsByMedia[storage.Memory]
		memBytes += j.BytesByMedia[storage.Memory]
		blocks += j.TotalBlocks
		memLocBlocks += j.MemLocationBlocks
	}
	return
}

// LocationBytes sums the bytes of block reads whose block had a memory
// replica at read time.
func (r *RunStats) LocationBytes() int64 {
	var total int64
	for i := range r.Jobs {
		total += r.Jobs[i].MemLocationBytes
	}
	return total
}

// JobCountByBin counts executed jobs per bin.
func (r *RunStats) JobCountByBin() [workload.NumBins]int {
	var out [workload.NumBins]int
	for i := range r.Jobs {
		out[r.Jobs[i].Bin]++
	}
	return out
}

// BytesReadByBin sums input bytes read per bin.
func (r *RunStats) BytesReadByBin() [workload.NumBins]int64 {
	var out [workload.NumBins]int64
	for i := range r.Jobs {
		j := &r.Jobs[i]
		for m := 0; m < 3; m++ {
			out[j.Bin] += j.BytesByMedia[m]
		}
	}
	return out
}

// runner holds live scheduling state.
type runner struct {
	engine *sim.Engine
	fs     *dfs.FileSystem
	opts   Options
	stats  *RunStats
	rng    *rand.Rand

	freeSlots map[*cluster.Node]int
	taskQueue []*task
	pending   int // jobs not yet finished
	failures  []error
}

type jobRun struct {
	spec  workload.Job
	file  *dfs.File
	stats *JobStats
	left  int // tasks not yet completed
}

type task struct {
	job   *jobRun
	block *dfs.Block
}

// Run stages the trace's input files into the file system and then replays
// the jobs. beforePhase, when non-nil, runs between the preload and the job
// phase (e.g., to let a manager settle or reset counters).
func Run(fs *dfs.FileSystem, tr *workload.Trace, opts Options, beforePhase func()) (*RunStats, error) {
	opts.applyDefaults()
	engine := fs.Engine()
	r := &runner{
		engine:    engine,
		fs:        fs,
		opts:      opts,
		stats:     &RunStats{Trace: tr},
		rng:       rand.New(rand.NewSource(opts.Seed + 17)),
		freeSlots: make(map[*cluster.Node]int),
	}
	for _, n := range fs.Cluster().Nodes() {
		r.freeSlots[n] = n.Slots()
	}
	start := engine.Now()
	if err := r.preload(); err != nil {
		return nil, err
	}
	r.stats.PreloadDuration = engine.Now().Sub(start)
	if beforePhase != nil {
		beforePhase()
	}
	r.stats.FSBaseline = *fs.Stats()

	base := engine.Now()
	r.pending = len(tr.Jobs)
	// Preallocate full capacity: task callbacks hold pointers into this
	// slice, so it must never reallocate while jobs are in flight.
	r.stats.Jobs = make([]JobStats, 0, len(tr.Jobs))
	for i := range tr.Jobs {
		spec := tr.Jobs[i]
		engine.ScheduleAt(base.Add(spec.Arrival), func() { r.arrive(spec) })
	}
	// Step rather than Run: a replication manager's periodic ticker keeps
	// the event queue non-empty forever, so drain only until the workload
	// completes.
	for r.pending > 0 && engine.Step() {
	}
	r.stats.FSFinal = *fs.Stats()
	if len(r.failures) > 0 {
		return r.stats, fmt.Errorf("jobs: %d failures, first: %w", len(r.failures), r.failures[0])
	}
	if r.pending != 0 {
		return r.stats, fmt.Errorf("jobs: %d jobs never completed", r.pending)
	}
	return r.stats, nil
}

// preload creates every trace input file with bounded concurrency.
func (r *runner) preload() error {
	order := rand.New(rand.NewSource(r.opts.Seed)).Perm(len(r.stats.Trace.Files))
	var firstErr error
	next := 0
	var startNext func()
	active := 0
	startNext = func() {
		for active < r.opts.PreloadParallel && next < len(order) {
			f := r.stats.Trace.Files[order[next]]
			next++
			active++
			r.fs.Create(f.Path, f.Size, func(_ *dfs.File, err error) {
				active--
				if err != nil && firstErr == nil {
					firstErr = err
				}
				startNext()
			})
		}
	}
	startNext()
	for (active > 0 || next < len(order)) && r.engine.Step() {
	}
	if firstErr != nil {
		return fmt.Errorf("jobs: preload: %w", firstErr)
	}
	return nil
}

// inputRetryDelay and inputRetryLimit govern waiting for a chained input
// (a prior job's output) that has not been written yet.
const (
	inputRetryDelay = 30 * time.Second
	inputRetryLimit = 20
)

// arrive admits one job: resolve its input (waiting briefly when the input
// is another job's still-running output), record the access (the upgrade
// hook fires before any data is read), then enqueue its tasks after the
// startup overhead.
func (r *runner) arrive(spec workload.Job) {
	r.admit(spec, r.engine.Now(), 0)
}

func (r *runner) admit(spec workload.Job, arrival time.Time, attempt int) {
	file, err := r.fs.Open(spec.InputPath)
	if err != nil {
		if attempt < inputRetryLimit {
			r.engine.Schedule(inputRetryDelay, func() { r.admit(spec, arrival, attempt+1) })
			return
		}
		r.failures = append(r.failures, fmt.Errorf("job %d: %w", spec.ID, err))
		r.pending--
		return
	}
	r.start(spec, arrival, file)
}

func (r *runner) start(spec workload.Job, arrival time.Time, file *dfs.File) {
	r.stats.Jobs = append(r.stats.Jobs, JobStats{
		ID:          spec.ID,
		Bin:         spec.Bin,
		Arrival:     arrival, // original arrival: dependency waits count
		InputBytes:  spec.InputBytes,
		OutputBytes: spec.OutputBytes,
	})
	js := &r.stats.Jobs[len(r.stats.Jobs)-1]
	jr := &jobRun{spec: spec, file: file, stats: js, left: len(file.Blocks())}
	r.fs.RecordAccess(file)
	r.engine.Schedule(r.opts.JobOverhead, func() {
		js.TaskSeconds += r.opts.JobOverhead.Seconds()
		if jr.left == 0 {
			r.finishJob(jr)
			return
		}
		// One task per block: grow the queue once and allocate the task
		// records in a single batch instead of per block.
		blocks := file.Blocks()
		r.taskQueue = slices.Grow(r.taskQueue, len(blocks))
		tasks := make([]task, len(blocks))
		for i, b := range blocks {
			tasks[i] = task{job: jr, block: b}
			r.taskQueue = append(r.taskQueue, &tasks[i])
		}
		r.trySchedule()
	})
}

// trySchedule assigns queued tasks to free slots.
func (r *runner) trySchedule() {
	for len(r.taskQueue) > 0 {
		t := r.taskQueue[0]
		node := r.pickNode(t.block)
		if node == nil {
			return // no free slots anywhere
		}
		r.taskQueue = r.taskQueue[1:]
		r.freeSlots[node]--
		r.runTask(t, node)
	}
}

// pickNode chooses the node a task runs on. With probability LocalityBias
// the task is placed on a free node holding one of its block's replicas —
// chosen by slot availability, NOT by tier, because Hadoop/Spark schedulers
// are data-local but tier-blind (Section 7.2). Otherwise (or when no
// replica holder has slots) the least-loaded free node wins and the read
// goes remote, where the DFS client picks the highest remote tier. This
// split is what separates the paper's access-based from location-based hit
// ratios (Figure 9).
func (r *runner) pickNode(b *dfs.Block) *cluster.Node {
	var bestAny *cluster.Node
	bestAnySlots := -1
	var bestLocal *cluster.Node
	bestLocalSlots := -1
	var bestTierLocal *cluster.Node
	bestTier := storage.Media(99)
	for _, n := range r.fs.Cluster().Nodes() {
		slots, known := r.freeSlots[n]
		if !known {
			// The node joined after Run started (membership churn): all of
			// its slots are free.
			slots = n.Slots()
			r.freeSlots[n] = slots
		}
		if slots <= 0 {
			continue
		}
		if slots > bestAnySlots {
			bestAny, bestAnySlots = n, slots
		}
		localTier := storage.Media(99)
		for _, rep := range b.Replicas() {
			if rep.Node() == n && rep.Readable() && rep.Media() < localTier {
				localTier = rep.Media()
			}
		}
		if localTier == 99 {
			continue
		}
		if slots > bestLocalSlots {
			bestLocal, bestLocalSlots = n, slots
		}
		if localTier < bestTier {
			bestTier, bestTierLocal = localTier, n
		}
	}
	if bestLocal != nil && r.rng.Float64() < r.opts.LocalityBias {
		if bestTierLocal != nil && r.rng.Float64() < r.opts.TierAffinity {
			return bestTierLocal
		}
		return bestLocal
	}
	return bestAny
}

// runTask executes one map task on a node.
func (r *runner) runTask(t *task, node *cluster.Node) {
	started := r.engine.Now()
	js := t.job.stats
	js.TotalBlocks++
	if t.block.ReplicaOn(storage.Memory) != nil {
		js.MemLocationBlocks++
		js.MemLocationBytes += t.block.Size()
	}
	finish := func() {
		js.TaskSeconds += r.engine.Now().Sub(started).Seconds()
		r.freeSlots[node]++
		t.job.left--
		if t.job.left == 0 {
			r.finishJob(t.job)
		}
		r.trySchedule()
	}
	r.engine.Schedule(r.opts.TaskOverhead, func() {
		r.fs.ReadBlock(t.block, node, func(res dfs.ReadResult, err error) {
			if err != nil {
				r.failures = append(r.failures, fmt.Errorf("job %d block %d: %w", t.job.spec.ID, t.block.ID(), err))
				finish()
				return
			}
			js.ReadsByMedia[res.Media]++
			js.BytesByMedia[res.Media] += t.block.Size()
			r.engine.Schedule(t.job.spec.CPUPerTask, finish)
		})
	})
}

// finishJob persists the job's output (when any) and stamps completion.
func (r *runner) finishJob(jr *jobRun) {
	complete := func() {
		jr.stats.Finished = r.engine.Now()
		r.pending--
	}
	if jr.spec.OutputPath == "" || jr.spec.OutputBytes == 0 {
		complete()
		return
	}
	writeStart := r.engine.Now()
	r.fs.Create(jr.spec.OutputPath, jr.spec.OutputBytes, func(_ *dfs.File, err error) {
		jr.stats.TaskSeconds += r.engine.Now().Sub(writeStart).Seconds()
		if err != nil {
			r.failures = append(r.failures, fmt.Errorf("job %d output: %w", jr.spec.ID, err))
		}
		complete()
	})
}
