package jobs

import (
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// smallTrace builds a tiny deterministic trace for unit tests.
func smallTrace() *workload.Trace {
	tr := &workload.Trace{Name: "test", Duration: time.Hour}
	tr.Files = []workload.FileSpec{
		{Path: "/in/a", Size: 32 * storage.MB, Bin: workload.BinA},
		{Path: "/in/b", Size: 48 * storage.MB, Bin: workload.BinA},
	}
	tr.Jobs = []workload.Job{
		{ID: 0, Arrival: time.Minute, InputPath: "/in/a", InputBytes: 32 * storage.MB,
			CPUPerTask: 2 * time.Second, Bin: workload.BinA},
		{ID: 1, Arrival: 2 * time.Minute, InputPath: "/in/b", InputBytes: 48 * storage.MB,
			CPUPerTask: 2 * time.Second, Bin: workload.BinA,
			OutputPath: "/out/1", OutputBytes: 8 * storage.MB},
		{ID: 2, Arrival: 10 * time.Minute, InputPath: "/in/a", InputBytes: 32 * storage.MB,
			CPUPerTask: 2 * time.Second, Bin: workload.BinA},
	}
	return tr
}

func newSystem(t *testing.T, mode dfs.Mode) *dfs.FileSystem {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()})
	return dfs.MustNew(c, dfs.Config{Mode: mode, BlockSize: 16 * storage.MB, Seed: 9})
}

func TestRunSmallTrace(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	stats, err := Run(fs, smallTrace(), DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != 3 {
		t.Fatalf("jobs executed = %d", len(stats.Jobs))
	}
	for _, j := range stats.Jobs {
		if j.Finished.Before(j.Arrival) {
			t.Fatalf("job %d finished before arrival", j.ID)
		}
		if j.CompletionTime() <= 0 {
			t.Fatalf("job %d completion = %v", j.ID, j.CompletionTime())
		}
		if j.TaskSeconds <= 0 {
			t.Fatalf("job %d task seconds = %v", j.ID, j.TaskSeconds)
		}
	}
	// Job 0 reads 2 blocks (32 MB / 16 MB), job 1 reads 3, job 2 reads 2.
	if stats.Jobs[0].TotalBlocks != 2 || stats.Jobs[1].TotalBlocks != 3 {
		t.Fatalf("block counts: %d, %d", stats.Jobs[0].TotalBlocks, stats.Jobs[1].TotalBlocks)
	}
	// HDFS mode: every read served from HDD.
	reads, memReads, _, _, bytes, memBytes := stats.Totals()
	if reads != 7 || memReads != 0 || memBytes != 0 {
		t.Fatalf("reads=%d memReads=%d", reads, memReads)
	}
	if bytes != 112*storage.MB {
		t.Fatalf("bytes read = %d", bytes)
	}
	// Output file must exist.
	if _, err := fs.Open("/out/1"); err != nil {
		t.Fatalf("output missing: %v", err)
	}
}

func TestPreloadCreatesAllFiles(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	tr := smallTrace()
	stats, err := Run(fs, tr, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tr.Files {
		if _, err := fs.Open(f.Path); err != nil {
			t.Fatalf("input %s missing after run: %v", f.Path, err)
		}
	}
	if stats.PreloadDuration <= 0 {
		t.Fatal("preload took no simulated time")
	}
}

func TestOctopusModeServesFromMemory(t *testing.T) {
	fs := newSystem(t, dfs.ModeOctopus)
	stats, err := Run(fs, smallTrace(), DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, memReads, _, _, _, _ := stats.Totals()
	if memReads == 0 {
		t.Fatal("octopus placement produced no memory reads")
	}
	// Location stats: all blocks had memory replicas (files fit in tier).
	_, _, blocks, memLoc, _, _ := stats.Totals()
	if memLoc != blocks {
		t.Fatalf("memLoc=%d blocks=%d", memLoc, blocks)
	}
}

func TestBaselineSnapshotTaken(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	stats, err := Run(fs, smallTrace(), DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FSBaseline.FilesCreated != 2 {
		t.Fatalf("baseline files = %d, want 2 (preload)", stats.FSBaseline.FilesCreated)
	}
	if stats.FSFinal.FilesCreated != 3 {
		t.Fatalf("final files = %d, want 3 (one output)", stats.FSFinal.FilesCreated)
	}
}

func TestBeforePhaseHookRuns(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	called := false
	if _, err := Run(fs, smallTrace(), DefaultOptions(), func() { called = true }); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("beforePhase hook never ran")
	}
}

func TestMissingInputReported(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	tr := smallTrace()
	tr.Jobs[0].InputPath = "/does/not/exist"
	_, err := Run(fs, tr, DefaultOptions(), nil)
	if err == nil {
		t.Fatal("missing input did not fail the run")
	}
}

func TestSlotContentionSerialisesTasks(t *testing.T) {
	// 1 node x 1 slot: tasks must run one at a time, so a 4-block job takes
	// at least 4 * (overhead + cpu).
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 1, SlotsPerNode: 1, Spec: storage.NodeSpec{
		{Media: storage.HDD, Capacity: 2 * storage.GB, ReadBW: 1e9, WriteBW: 1e9, Count: 1},
	}})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModeHDFS, BlockSize: 16 * storage.MB, Replication: 1, Seed: 9})
	tr := &workload.Trace{Name: "serial", Duration: time.Hour}
	tr.Files = []workload.FileSpec{{Path: "/in/a", Size: 64 * storage.MB, Bin: workload.BinA}}
	tr.Jobs = []workload.Job{{ID: 0, Arrival: time.Second, InputPath: "/in/a",
		InputBytes: 64 * storage.MB, CPUPerTask: 10 * time.Second, Bin: workload.BinA}}
	opts := DefaultOptions()
	stats, err := Run(fs, tr, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	minTime := 4 * (opts.TaskOverhead + 10*time.Second)
	if got := stats.Jobs[0].CompletionTime(); got < minTime {
		t.Fatalf("completion %v < serial minimum %v", got, minTime)
	}
}

func TestAggregations(t *testing.T) {
	fs := newSystem(t, dfs.ModeHDFS)
	stats, err := Run(fs, smallTrace(), DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	byBin := stats.JobCountByBin()
	if byBin[workload.BinA] != 3 {
		t.Fatalf("bin A jobs = %d", byBin[workload.BinA])
	}
	mean := stats.MeanCompletionByBin()
	if mean[workload.BinA] <= 0 {
		t.Fatal("mean completion missing")
	}
	if mean[workload.BinF] != 0 {
		t.Fatal("empty bin has non-zero mean")
	}
	ts := stats.TaskSecondsByBin()
	if ts[workload.BinA] <= 0 {
		t.Fatal("task seconds missing")
	}
	reads := stats.ReadsByBinMedia()
	if reads[workload.BinA][storage.HDD] != 7 {
		t.Fatalf("bin A HDD reads = %d", reads[workload.BinA][storage.HDD])
	}
	bytesByBin := stats.BytesReadByBin()
	if bytesByBin[workload.BinA] != 112*storage.MB {
		t.Fatalf("bin A bytes = %d", bytesByBin[workload.BinA])
	}
}

// TestEndToEndWithManager exercises the full Octopus++ stack on a small
// generated workload: placement, policy-driven movement, job execution.
func TestEndToEndWithManager(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.NodeSpec{
		{Media: storage.Memory, Capacity: 128 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 512 * storage.MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 4 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
	}})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModeOctopus, BlockSize: 16 * storage.MB, Seed: 21})
	cfg := core.DefaultConfig()
	cfg.PeriodicInterval = time.Minute
	ctx := core.NewContext(fs, cfg)
	down := policy.NewLRU(ctx)
	up := policy.NewOSA(ctx)
	mgr := core.NewManager(ctx, down, up)
	mgr.Start()
	defer mgr.Stop()

	p := workload.FB()
	p.NumJobs = 60
	p.Duration = time.Hour
	// Scale sizes down: cap bins at C so files fit this small cluster.
	p.BinFractions = [workload.NumBins]float64{0.8, 0.2, 0, 0, 0, 0}
	tr := workload.Generate(p, 31)

	stats, err := Run(fs, tr, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != 60 {
		t.Fatalf("jobs = %d", len(stats.Jobs))
	}
	// The manager must have kept memory under control.
	if util := fs.TierUtilization(storage.Memory); util > 0.98 {
		t.Fatalf("memory at %.2f despite downgrades", util)
	}
	if mgr.Metrics().DowngradesScheduled == 0 {
		t.Fatal("no downgrades during workload")
	}
	_, memReads, _, _, _, _ := stats.Totals()
	if memReads == 0 {
		t.Fatal("no memory reads in managed run")
	}
	mm := mgr.Metrics()
	if mm.Ticks == 0 {
		t.Fatal("manager never ticked")
	}
}
