// Dfsio reproduces the Figure 2 scenario at example scale: write a dataset
// larger than the cluster's aggregate memory, then read it back, on plain
// HDFS and on Octopus++ (XGB policies), and print progressive throughput.
// The tiered system's read advantage collapses once memory is exhausted
// unless automated movement keeps the tier fresh.
package main

import (
	"fmt"
	"log"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

const (
	fileSize  = 256 * storage.MB
	fileCount = 24 // 6 GB total vs 1.5 GB of cluster memory
	streams   = 6
)

func main() {
	for _, managed := range []bool{false, true} {
		name := "HDFS"
		if managed {
			name = "Octopus++ (XGB)"
		}
		write, read := run(managed)
		fmt.Printf("%s:\n", name)
		fmt.Printf("  wrote %d x %d MB in %v (%.0f MB/s)\n",
			fileCount, fileSize/storage.MB, write.Round(time.Millisecond),
			float64(fileCount*fileSize)/write.Seconds()/1e6)
		fmt.Printf("  read it back in %v (%.0f MB/s)\n\n",
			read.Round(time.Millisecond),
			float64(fileCount*fileSize)/read.Seconds()/1e6)
	}
}

func run(managed bool) (writeTime, readTime time.Duration) {
	engine := sim.NewEngine()
	cl := cluster.MustNew(engine, cluster.Config{
		Workers:      3,
		SlotsPerNode: 4,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 512 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 4 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 32 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
		},
	})
	mode := dfs.ModeHDFS
	if managed {
		mode = dfs.ModeOctopus
	}
	fs := dfs.MustNew(cl, dfs.Config{Mode: mode, Seed: 3, ClientRate: 1000e6})
	if managed {
		ctx := core.NewContext(fs, core.DefaultConfig())
		down, err := policy.NewDowngrade("xgb", ctx, ml.DefaultLearnerConfig())
		if err != nil {
			log.Fatal(err)
		}
		up, err := policy.NewUpgrade("xgb", ctx, ml.DefaultLearnerConfig())
		if err != nil {
			log.Fatal(err)
		}
		mgr := core.NewManager(ctx, down, up)
		mgr.Start()
		defer mgr.Stop()
	}

	// Write phase.
	start := engine.Now()
	pending := 0
	next := 0
	var launch func()
	launch = func() {
		for pending < streams && next < fileCount {
			idx := next
			next++
			pending++
			fs.Create(fmt.Sprintf("/bench/f%02d", idx), fileSize, func(_ *dfs.File, err error) {
				if err != nil {
					log.Fatalf("create: %v", err)
				}
				pending--
				launch()
			})
		}
	}
	launch()
	for (pending > 0 || next < fileCount) && engine.Step() {
	}
	writeTime = engine.Now().Sub(start)

	// Read phase.
	start = engine.Now()
	next, pending = 0, 0
	var read func()
	read = func() {
		for pending < streams && next < fileCount {
			idx := next
			next++
			pending++
			f, err := fs.Open(fmt.Sprintf("/bench/f%02d", idx))
			if err != nil {
				log.Fatalf("open: %v", err)
			}
			fs.RecordAccess(f)
			remaining := len(f.Blocks())
			node := cl.Node(idx % cl.Size())
			for _, b := range f.Blocks() {
				fs.ReadBlock(b, node, func(_ dfs.ReadResult, err error) {
					if err != nil {
						log.Fatalf("read: %v", err)
					}
					remaining--
					if remaining == 0 {
						pending--
						read()
					}
				})
			}
		}
	}
	read()
	for (pending > 0 || next < fileCount) && engine.Step() {
	}
	readTime = engine.Now().Sub(start)
	return writeTime, readTime
}
