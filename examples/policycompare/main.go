// Policycompare runs the same generated Facebook-style workload under four
// tiering configurations — static OctopusFS placement, LRU+OSA, EXD, and
// the paper's XGB policies — and prints completion-time and efficiency
// comparisons against the plain-HDFS baseline (the Figure 6/7 methodology
// at example scale).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/jobs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

type system struct {
	name string
	mode dfs.Mode
	down string
	up   string
}

func main() {
	p := workload.FB()
	p.NumJobs = 250
	p.Duration = 2 * time.Hour
	// Keep jobs within bin D so the example cluster stays small.
	p.BinFractions = [workload.NumBins]float64{0.70, 0.20, 0.05, 0.05, 0, 0}
	trace := workload.Generate(p, 7)
	fmt.Printf("workload: %d jobs, %d files, %.1f GB input\n\n",
		len(trace.Jobs), len(trace.Files), float64(trace.TotalInputBytes())/float64(storage.GB))

	systems := []system{
		{name: "HDFS", mode: dfs.ModeHDFS},
		{name: "OctopusFS", mode: dfs.ModeOctopus},
		{name: "LRU-OSA", mode: dfs.ModeOctopus, down: "lru", up: "osa"},
		{name: "EXD", mode: dfs.ModeOctopus, down: "exd", up: "exd"},
		{name: "XGB", mode: dfs.ModeOctopus, down: "xgb", up: "xgb"},
	}

	var baseline *jobs.RunStats
	table := &eval.Table{
		ID:     "policycompare",
		Title:  "policy comparison vs HDFS",
		Header: []string{"System", "Mean completion", "Reduction", "Task-hours", "Efficiency gain", "Memory hit ratio"},
	}
	for _, sys := range systems {
		stats := run(sys, trace)
		reads, memReads, _, _, _, _ := stats.Totals()
		meanAll := meanCompletion(stats)
		taskHours := totalTaskSeconds(stats) / 3600
		row := []string{
			sys.name,
			meanAll.Round(100 * time.Millisecond).String(),
			"-",
			fmt.Sprintf("%.1f", taskHours),
			"-",
			eval.Pct(eval.HitRatio(memReads, reads)),
		}
		if baseline != nil {
			row[2] = eval.Pct(eval.Reduction(meanCompletion(baseline).Seconds(), meanAll.Seconds()))
			row[4] = eval.Pct(eval.Reduction(totalTaskSeconds(baseline)/3600, taskHours))
		} else {
			baseline = stats
		}
		table.AddRow(row...)
	}
	table.Fprint(os.Stdout)
}

func run(sys system, trace *workload.Trace) *jobs.RunStats {
	engine := sim.NewEngine()
	cl := cluster.MustNew(engine, cluster.Config{
		Workers:      3,
		SlotsPerNode: 4,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
		},
	})
	fs := dfs.MustNew(cl, dfs.Config{Mode: sys.mode, Seed: 7, ClientRate: 1000e6})
	if sys.down != "" || sys.up != "" {
		ctx := core.NewContext(fs, core.DefaultConfig())
		down, err := policy.NewDowngrade(sys.down, ctx, ml.DefaultLearnerConfig())
		if err != nil {
			log.Fatal(err)
		}
		up, err := policy.NewUpgrade(sys.up, ctx, ml.DefaultLearnerConfig())
		if err != nil {
			log.Fatal(err)
		}
		mgr := core.NewManager(ctx, down, up)
		mgr.Start()
		defer mgr.Stop()
	}
	stats, err := jobs.Run(fs, trace, jobs.DefaultOptions(), nil)
	if err != nil {
		log.Fatalf("%s: %v", sys.name, err)
	}
	return stats
}

func meanCompletion(stats *jobs.RunStats) time.Duration {
	if len(stats.Jobs) == 0 {
		return 0
	}
	var total time.Duration
	for i := range stats.Jobs {
		total += stats.Jobs[i].CompletionTime()
	}
	return total / time.Duration(len(stats.Jobs))
}

func totalTaskSeconds(stats *jobs.RunStats) float64 {
	var total float64
	for i := range stats.Jobs {
		total += stats.Jobs[i].TaskSeconds
	}
	return total
}
