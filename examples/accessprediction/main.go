// Accessprediction uses the ml and gbt packages directly, without a
// cluster: it builds the Section 4 training pipeline over a generated
// trace, trains the gradient-boosted model, reports ROC/AUC on held-out
// data (the Figure 14 methodology), and then demonstrates incremental
// adaptation when the workload switches from FB-style to CMU-style
// patterns (the Figure 17 behaviour).
package main

import (
	"fmt"
	"log"
	"time"

	"octostore/internal/eval"
	"octostore/internal/gbt"
	"octostore/internal/ml"
	"octostore/internal/sim"
	"octostore/internal/workload"
)

const window = 30 * time.Minute // class window: accessed in next 30 min?

// replay pushes a trace's file events through a tracker and emits training
// samples the way the live system does.
func replay(tr *workload.Trace, spec ml.FeatureSpec, emit func(x []float64, y float64, at time.Duration)) {
	tracker := ml.NewTracker(spec.K)
	pipe := ml.Pipeline{Spec: spec, Window: window}
	ids := map[string]int64{}
	for i, f := range tr.Files {
		ids[f.Path] = int64(i)
		tracker.OnCreate(int64(i), f.Size, sim.Epoch.Add(f.CreatedAt))
	}
	samplePeriod := 5 * time.Minute
	nextSample := samplePeriod
	for _, j := range tr.Jobs {
		for nextSample <= j.Arrival {
			for id := int64(0); id < int64(len(tr.Files)); id++ {
				if id%7 != 0 { // sample ~1/7th of files per period
					continue
				}
				if rec, ok := tracker.Get(id); ok {
					ref := sim.Epoch.Add(nextSample - window)
					if !rec.Created.After(ref) && nextSample >= window {
						x, y := pipe.TrainingPoint(rec, ref)
						emit(x, y, nextSample)
					}
				}
			}
			nextSample += samplePeriod
		}
		rec := tracker.OnAccess(ids[j.InputPath], sim.Epoch.Add(j.Arrival))
		if j.Arrival >= window {
			x, y := pipe.TrainingPoint(rec, sim.Epoch.Add(j.Arrival-window))
			emit(x, y, j.Arrival)
		}
	}
}

func main() {
	spec := ml.DefaultFeatureSpec()

	// Phase 1: train on an FB trace and evaluate on a held-out time slice.
	fb := workload.Generate(workload.FB(), 11)
	var trainX *gbt.Matrix = gbt.NewMatrix(spec.Width())
	var trainY []float64
	var testSamples [][]float64
	var testLabels []float64
	cut := fb.Duration * 5 / 6
	replay(fb, spec, func(x []float64, y float64, at time.Duration) {
		if at < cut {
			trainX.AppendRow(x)
			trainY = append(trainY, y)
		} else {
			testSamples = append(testSamples, x)
			testLabels = append(testLabels, y)
		}
	})
	fmt.Printf("FB dataset: %d training, %d test samples\n", trainX.Rows(), len(testSamples))

	model, err := gbt.Train(trainX, trainY, gbt.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	scores := make([]float64, len(testSamples))
	for i, x := range testSamples {
		scores[i] = model.Predict(x)
	}
	fmt.Printf("held-out AUC:      %.4f\n", eval.AUC(scores, testLabels))
	fmt.Printf("held-out accuracy: %s (threshold 0.5)\n", eval.Pct(eval.Accuracy(scores, testLabels, 0.5)))
	fmt.Printf("model size:        %d trees, ~%d KB\n\n", model.NumTrees(), model.ApproxMemoryBytes()/1024)

	// Phase 2: the workload switches to CMU-style periodic scans. Accuracy
	// drops, then incremental updates recover it.
	cmu := workload.Generate(workload.CMU(), 12)
	var cmuX [][]float64
	var cmuY []float64
	replay(cmu, spec, func(x []float64, y float64, _ time.Duration) {
		cmuX = append(cmuX, x)
		cmuY = append(cmuY, y)
	})
	measure := func(lo, hi int) float64 {
		var s, l []float64
		for i := lo; i < hi && i < len(cmuX); i++ {
			s = append(s, model.Predict(cmuX[i]))
			l = append(l, cmuY[i])
		}
		return eval.Accuracy(s, l, 0.5)
	}
	chunk := len(cmuX) / 4
	fmt.Printf("after workload switch to CMU:\n")
	for c := 0; c < 4; c++ {
		acc := measure(c*chunk, (c+1)*chunk)
		fmt.Printf("  quarter %d accuracy: %s", c+1, eval.Pct(acc))
		// Incrementally update on this quarter before the next evaluation.
		xb := gbt.NewMatrix(spec.Width())
		var yb []float64
		for i := c * chunk; i < (c+1)*chunk && i < len(cmuX); i++ {
			xb.AppendRow(cmuX[i])
			yb = append(yb, cmuY[i])
		}
		if xb.Rows() > 0 {
			if err := model.Update(xb, yb, 10); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> updated with %d samples", xb.Rows())
		}
		fmt.Println()
	}
}
