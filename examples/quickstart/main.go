// Quickstart: build a three-tier cluster, attach the Octopus++ replication
// manager with the paper's XGB policies, write and read a few files, and
// watch replicas move between tiers automatically.
package main

import (
	"fmt"
	"log"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func main() {
	// A simulated 3-worker cluster: every worker has a memory, an SSD and
	// an HDD tier. The virtual clock lets hours pass in milliseconds.
	engine := sim.NewEngine()
	cl := cluster.MustNew(engine, cluster.Config{
		Workers:      3,
		SlotsPerNode: 4,
		Spec:         storage.SmallWorkerSpec(),
	})

	// An OctopusFS-style file system: block replicas are spread across
	// nodes AND tiers by the multi-objective placement policy.
	fs := dfs.MustNew(cl, dfs.Config{Mode: dfs.ModeOctopus, BlockSize: 16 * storage.MB, Seed: 42})

	// Octopus++: a replication manager with an LRU downgrade policy and the
	// ML-driven XGB upgrade policy.
	ctx := core.NewContext(fs, core.DefaultConfig())
	down, err := policy.NewDowngrade("lru", ctx, ml.DefaultLearnerConfig())
	if err != nil {
		log.Fatal(err)
	}
	up, err := policy.NewUpgrade("xgb", ctx, ml.DefaultLearnerConfig())
	if err != nil {
		log.Fatal(err)
	}
	mgr := core.NewManager(ctx, down, up)
	mgr.Start()
	defer mgr.Stop()

	// Write a handful of files. Creation is asynchronous: completions are
	// simulation events.
	for i := 0; i < 12; i++ {
		path := fmt.Sprintf("/demo/file-%02d", i)
		fs.Create(path, 16*storage.MB, func(f *dfs.File, err error) {
			if err != nil {
				log.Fatalf("create: %v", err)
			}
		})
		engine.RunFor(30 * time.Second)
	}
	engine.RunFor(time.Minute)

	fmt.Println("tier utilisation after writes:")
	for _, m := range storage.AllMedia {
		fmt.Printf("  %-4s %5.1f%%\n", m, 100*fs.TierUtilization(m))
	}

	// Memory (64 MB x 3 nodes) cannot hold all 12 files; the manager has
	// been downgrading the least recently used ones to keep headroom.
	f, err := fs.Open("/demo/file-00")
	if err != nil {
		log.Fatal(err)
	}
	top, _ := f.HighestTier()
	fmt.Printf("\noldest file now resides on: %s\n", top)

	// Read one file: the access is recorded first (so upgrade policies can
	// react), then each block is served from its best replica.
	fs.RecordAccess(f)
	for _, b := range f.Blocks() {
		fs.ReadBlock(b, cl.Node(0), func(res dfs.ReadResult, err error) {
			if err != nil {
				log.Fatalf("read: %v", err)
			}
			fmt.Printf("block %d served from %s (remote=%v)\n", b.ID(), res.Media, res.Remote)
		})
	}
	engine.RunFor(time.Minute)

	st := fs.Stats()
	fmt.Printf("\nbytes downgraded to SSD: %d MB\n", st.BytesDowngradedTo[storage.SSD]/storage.MB)
	fmt.Printf("manager moves: %d downgrades, %d upgrades\n",
		mgr.Metrics().DowngradesScheduled, mgr.Metrics().UpgradesScheduled)
}
