// Scenarioreplay: define a custom scenario with the declarative DSL —
// a bursty CMU-style workload plus a mid-run capacity crunch and node
// churn — and replay it against two system configurations with the
// invariant checker validating every event.
package main

import (
	"fmt"
	"log"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/scenario"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

func main() {
	// A scenario is data: a cluster topology, a trace constructor composed
	// from the workload generators and transforms, and a perturbation list.
	sc := scenario.Scenario{
		Name:        "demo",
		Description: "bursty CMU tenant + capacity crunch + node churn",
		Cluster:     scenario.DefaultCluster,
		Trace: func(o scenario.Options) *workload.Trace {
			p := scenario.FastProfile(workload.CMU())
			p.NumJobs = 80
			// Compress arrivals into 5-minute storms every half hour.
			return workload.Burstify(workload.Generate(p, o.Seed), 30*time.Minute, 5*time.Minute)
		},
		Perturb: []scenario.Perturbation{
			// 2 GB of cold ballast lands 30 virtual minutes in.
			scenario.CapacityCrunch{
				Offset:     30 * time.Minute,
				TotalBytes: 2 * storage.GB,
				FileBytes:  256 * storage.MB,
			},
			// A worker dies at minute 50; a fresh one joins at minute 80.
			scenario.NodeChurn{
				Leave: []time.Duration{50 * time.Minute},
				Join:  []time.Duration{80 * time.Minute},
				Spec:  storage.SmallWorkerSpec(),
				Slots: 4,
			},
		},
	}

	systems := []scenario.System{
		{Name: "OctopusFS", Mode: dfs.ModeOctopus},
		{Name: "Octopus++ (XGB)", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"},
	}
	for _, sys := range systems {
		res, err := scenario.Run(sc, sys, scenario.Options{Fast: true, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s jobs=%d  mean=%v  read=%.1f GB  mem-hit=%.1f%%\n",
			sys.Name, res.Jobs, res.MeanCompletion.Round(time.Millisecond),
			float64(res.BytesRead)/float64(storage.GB), 100*res.MemHitRatio)
		fmt.Printf("%-16s upgrades=%d downgrades=%d repairs=%d\n",
			"", res.Upgrades, res.Downgrades, res.Repairs)
		fmt.Printf("%-16s events=%d invariant checks=%d violations=%d lost blocks=%d\n\n",
			"", res.Events, res.AccountingChecks+res.DeepChecks, len(res.Violations), res.DataLossBlocks)
	}
}
