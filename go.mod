module octostore

go 1.21
