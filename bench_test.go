// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation through the experiment harness, one benchmark per
// artifact. Benchmarks default to Fast scale so `go test -bench=.` stays
// minutes-cheap; set OCTOSTORE_BENCH_FULL=1 to run at the paper's testbed
// scale (11 workers, 6-hour traces).
//
// Harness parallelism threads through as well: pass -exp.parallel=N (or set
// OCTOSTORE_BENCH_PARALLEL=N; 0 sequential, -1 all cores) to fan each
// benchmark's experiment cells out across a worker pool — results are
// byte-identical at any level, so this benchmarks the harness speedup, not
// a different computation:
//
//	go test -bench BenchmarkFig6 -exp.parallel=-1 .
package repro_test

import (
	"flag"
	"os"
	"strconv"
	"testing"

	"octostore/internal/eval"
	"octostore/internal/experiments"
)

var expParallel = flag.Int("exp.parallel", envInt("OCTOSTORE_BENCH_PARALLEL", 0),
	"concurrent experiment cells per benchmark (0 sequential, -1 all cores)")

func envInt(key string, fallback int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return fallback
}

func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Fast = os.Getenv("OCTOSTORE_BENCH_FULL") == ""
	o.Parallel = *expParallel
	return o
}

// runExperiment executes one registered experiment b.N times and reports
// rows-produced as a sanity metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	var tables []*eval.Table
	for i := 0; i < b.N; i++ {
		tables, err = runner(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	rows := 0
	for _, t := range tables {
		rows += len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkFig2DFSIO regenerates Figure 2 (DFSIO write/read throughput for
// the four systems).
func BenchmarkFig2DFSIO(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkTable3JobBins regenerates Table 3 (job size distributions).
func BenchmarkTable3JobBins(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig5CDFs regenerates Figure 5 (workload CDFs).
func BenchmarkFig5CDFs(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6CompletionTime regenerates Figure 6 (end-to-end completion
// time reduction per bin, FB and CMU).
func BenchmarkFig6CompletionTime(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Efficiency regenerates Figure 7 (cluster efficiency
// improvement per bin).
func BenchmarkFig7Efficiency(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8TierAccess regenerates Figure 8 (storage tier access
// distributions).
func BenchmarkFig8TierAccess(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9HitRatios regenerates Figure 9 (hit ratio / byte hit ratio
// by accesses and locations).
func BenchmarkFig9HitRatios(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Downgrade regenerates Figure 10 (downgrade policies in
// isolation).
func BenchmarkFig10Downgrade(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11DowngradeHitRatios regenerates Figure 11 (downgrade-policy
// hit ratios).
func BenchmarkFig11DowngradeHitRatios(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Upgrade regenerates Figure 12 (upgrade policies in
// isolation).
func BenchmarkFig12Upgrade(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable4UpgradeStats regenerates Table 4 (upgrade byte accuracy /
// coverage).
func BenchmarkTable4UpgradeStats(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig13Scalability regenerates Figure 13 (cluster-size scaling).
func BenchmarkFig13Scalability(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14ROC regenerates Figure 14 (model ROC/AUC).
func BenchmarkFig14ROC(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15FeatureAblation regenerates Figure 15 (feature ablation).
func BenchmarkFig15FeatureAblation(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16LearningModes regenerates Figure 16 (incremental vs
// retrain vs one-shot accuracy over time).
func BenchmarkFig16LearningModes(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17WorkloadSwitch regenerates Figure 17 (accuracy across
// FB/CMU workload alternation).
func BenchmarkFig17WorkloadSwitch(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkOverheads regenerates the Section 7.7 overhead numbers.
func BenchmarkOverheads(b *testing.B) { runExperiment(b, "overheads") }

// BenchmarkScenarios replays the scenario catalog (hot-set drift, burst
// storm, multi-tenant mix, capacity crunch, node churn) against the
// compared systems with the invariant checker enabled.
func BenchmarkScenarios(b *testing.B) { runExperiment(b, "scenarios") }
